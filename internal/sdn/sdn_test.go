package sdn

import (
	"testing"
	"time"

	"dpiservice/internal/controller"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/netsim"
	"dpiservice/internal/openflow"
	"dpiservice/internal/packet"
	"dpiservice/internal/traffic"
)

// fabric builds a switch with the named endpoints attached as plain
// hosts, plus a TSA over a controller with those endpoints registered
// as middleboxes where needed.
type fabric struct {
	net   *netsim.Network
	sw    *openflow.Switch
	tsa   *TSA
	ctl   *controller.Controller
	hosts map[string]*netsim.Host
}

func newFabric(t *testing.T, names ...string) *fabric {
	t.Helper()
	f := &fabric{
		net:   netsim.NewNetwork(),
		sw:    openflow.NewSwitch("s1"),
		ctl:   controller.New(),
		hosts: map[string]*netsim.Host{},
	}
	t.Cleanup(f.net.Stop)
	if err := f.net.AddNode(f.sw); err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		h := netsim.NewHost(n, packet.MAC{2, 0, 0, 0, 0, byte(i + 1)}, packet.IP4{10, 0, 0, byte(i + 1)})
		if err := f.net.AddNode(h); err != nil {
			t.Fatal(err)
		}
		if err := f.net.Connect(h, f.sw, netsim.LinkOpts{}); err != nil {
			t.Fatal(err)
		}
		f.hosts[n] = h
	}
	f.tsa = NewTSA(f.sw, f.ctl)
	return f
}

func (f *fabric) registerMbox(t *testing.T, id string) {
	t.Helper()
	if _, err := f.ctl.Register(ctlproto.Register{MboxID: id, Type: id}); err != nil {
		t.Fatal(err)
	}
}

func recvFrame(t *testing.T, h *netsim.Host) []byte {
	t.Helper()
	select {
	case f := <-h.Inbox():
		return f
	case <-time.After(time.Second):
		t.Fatalf("%s: no frame", h.Name())
		return nil
	}
}

func TestInstallChainLegacyPath(t *testing.T) {
	f := newFabric(t, "src", "dst", "mb1", "mb2")
	f.registerMbox(t, "mb1")
	f.registerMbox(t, "mb2")
	tag, err := f.tsa.InstallChainLegacy(ChainSpec{Src: "src", Dst: "dst", Elements: []string{"mb1", "mb2"}})
	if err != nil {
		t.Fatal(err)
	}
	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}, SrcPort: 5, DstPort: 80, Protocol: packet.IPProtoTCP}
	f.hosts["src"].Send(fb.Build(tuple, []byte("walk the chain")))

	// mb1 receives it tagged.
	fr := recvFrame(t, f.hosts["mb1"])
	if id, ok := packet.OuterVLAN(fr); !ok || id != tag {
		t.Fatalf("mb1 tag = %d/%v, want %d", id, ok, tag)
	}
	// mb1 forwards; mb2 receives, still tagged.
	f.hosts["mb1"].Send(fr)
	fr = recvFrame(t, f.hosts["mb2"])
	if id, ok := packet.OuterVLAN(fr); !ok || id != tag {
		t.Fatalf("mb2 tag = %d/%v", id, ok)
	}
	// mb2 forwards; dst receives untagged.
	f.hosts["mb2"].Send(fr)
	fr = recvFrame(t, f.hosts["dst"])
	if _, ok := packet.OuterVLAN(fr); ok {
		t.Fatal("dst frame still tagged")
	}
	// Nothing went to src or the DPI-less elements twice.
	select {
	case <-f.hosts["src"].Inbox():
		t.Fatal("frame bounced back to src")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestInstallChainWithDPIPrependsInstance(t *testing.T) {
	f := newFabric(t, "src", "dst", "dpi-1", "mb1")
	f.registerMbox(t, "mb1")
	tag, err := f.tsa.InstallChainWithDPI(ChainSpec{Src: "src", Dst: "dst", Elements: []string{"mb1"}}, "dpi-1")
	if err != nil {
		t.Fatal(err)
	}
	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}, SrcPort: 5, DstPort: 80, Protocol: packet.IPProtoTCP}
	f.hosts["src"].Send(fb.Build(tuple, []byte("x")))
	// The DPI instance is the first hop.
	fr := recvFrame(t, f.hosts["dpi-1"])
	if id, ok := packet.OuterVLAN(fr); !ok || id != tag {
		t.Fatalf("dpi tag = %d/%v", id, ok)
	}
	f.hosts["dpi-1"].Send(fr)
	fr = recvFrame(t, f.hosts["mb1"])
	f.hosts["mb1"].Send(fr)
	recvFrame(t, f.hosts["dst"])
}

func TestEmptyChainGoesStraightToDst(t *testing.T) {
	f := newFabric(t, "src", "dst")
	tag, err := f.tsa.InstallChainLegacy(ChainSpec{Src: "src", Dst: "dst"})
	if err != nil {
		t.Fatal(err)
	}
	_ = tag
	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}, Protocol: packet.IPProtoTCP}
	f.hosts["src"].Send(fb.Build(tuple, []byte("direct")))
	fr := recvFrame(t, f.hosts["dst"])
	if _, ok := packet.OuterVLAN(fr); ok {
		t.Fatal("empty chain tagged the frame")
	}
}

func TestClassifierNarrowsChainEntry(t *testing.T) {
	f := newFabric(t, "src", "dst", "mb1")
	f.registerMbox(t, "mb1")
	cls := openflow.NewMatch()
	cls.L4Dst = 80
	if _, err := f.tsa.InstallChainLegacy(ChainSpec{Src: "src", Dst: "dst", Elements: []string{"mb1"}, Classify: cls}); err != nil {
		t.Fatal(err)
	}
	// Default route for everything else.
	def := openflow.NewMatch()
	srcPort, _ := f.sw.PortOf("src")
	def.InPort = srcPort
	dstPort, _ := f.sw.PortOf("dst")
	f.sw.AddFlow(1, def, openflow.Output(dstPort))

	var fb traffic.FrameBuilder
	web := packet.FiveTuple{Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}, SrcPort: 9, DstPort: 80, Protocol: packet.IPProtoTCP}
	ssh := web
	ssh.DstPort = 22
	f.hosts["src"].Send(fb.Build(web, []byte("to the chain")))
	f.hosts["src"].Send(fb.Build(ssh, []byte("direct")))

	recvFrame(t, f.hosts["mb1"]) // web traffic enters the chain
	fr := recvFrame(t, f.hosts["dst"])
	var s packet.Summary
	if err := packet.Summarize(fr, &s); err != nil || s.Tuple.DstPort != 22 {
		t.Fatalf("dst got %v, want the ssh packet", s.Tuple)
	}
}

func TestInstallBalancedChainValidation(t *testing.T) {
	f := newFabric(t, "src", "dst", "mb1")
	f.registerMbox(t, "mb1")
	if _, err := f.tsa.InstallBalancedChain(ChainSpec{Src: "src", Dst: "dst", Elements: []string{"mb1"}}, nil); err != ErrNoInstances {
		t.Errorf("err = %v, want ErrNoInstances", err)
	}
	if _, err := f.tsa.InstallChainLegacy(ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ghost"}}); err == nil {
		t.Error("chain with unregistered middlebox accepted")
	}
	if _, err := f.tsa.InstallChainWithDPI(ChainSpec{Src: "", Dst: "dst"}, "dpi"); err == nil {
		t.Error("empty src accepted")
	}
}

func TestPacketInIgnoresForeignAndReportFrames(t *testing.T) {
	f := newFabric(t, "src", "dst", "mb1", "dpi-1")
	f.registerMbox(t, "mb1")
	f.sw.SetController(f.tsa)
	if _, err := f.tsa.InstallBalancedChain(ChainSpec{Src: "src", Dst: "dst", Elements: []string{"mb1"}}, []string{"dpi-1"}); err != nil {
		t.Fatal(err)
	}
	// A report frame punted to the controller must not create flow
	// rules or crash.
	var rep packet.Report
	rep.AddMatch(0, 1, 1)
	buf := packet.NewSerializeBuffer(32)
	if err := packet.SerializeLayers(buf,
		&packet.Ethernet{EtherType: packet.EtherTypeReport},
		packet.Payload(rep.AppendEncoded(nil))); err != nil {
		t.Fatal(err)
	}
	before := f.sw.NumFlows()
	srcPort, _ := f.sw.PortOf("src")
	f.tsa.PacketIn(f.sw, srcPort, buf.Bytes())
	if f.sw.NumFlows() != before {
		t.Error("report frame installed flow rules")
	}
	// A packet-in from a port with no pending chain is ignored too.
	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: packet.IP4{1, 1, 1, 1}, Dst: packet.IP4{2, 2, 2, 2}, Protocol: packet.IPProtoTCP}
	otherPort, _ := f.sw.PortOf("dst")
	f.tsa.PacketIn(f.sw, otherPort, fb.Build(tuple, []byte("x")))
	if f.sw.NumFlows() != before {
		t.Error("foreign packet-in installed flow rules")
	}
}

func TestUninstallChain(t *testing.T) {
	f := newFabric(t, "src", "dst", "mb1", "mb2")
	f.registerMbox(t, "mb1")
	f.registerMbox(t, "mb2")
	tag1, err := f.tsa.InstallChainLegacy(ChainSpec{Src: "src", Dst: "dst", Elements: []string{"mb1", "mb2"}})
	if err != nil {
		t.Fatal(err)
	}
	tag2, err := f.tsa.InstallChainLegacy(ChainSpec{Src: "dst", Dst: "src", Elements: []string{"mb2"}})
	if err != nil {
		t.Fatal(err)
	}
	before := f.sw.NumFlows()
	removed := f.tsa.UninstallChain(tag1)
	if removed == 0 {
		t.Fatal("nothing removed")
	}
	if f.sw.NumFlows() != before-removed {
		t.Errorf("NumFlows = %d, want %d", f.sw.NumFlows(), before-removed)
	}
	// Chain 1's traffic now misses (dropped — no controller set).
	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}, SrcPort: 3, DstPort: 80, Protocol: packet.IPProtoTCP}
	f.hosts["src"].Send(fb.Build(tuple, []byte("orphaned")))
	select {
	case <-f.hosts["mb1"].Inbox():
		t.Fatal("uninstalled chain still forwards")
	case <-time.After(30 * time.Millisecond):
	}
	// Chain 2 is untouched.
	rev := tuple
	rev.Src, rev.Dst = tuple.Dst, tuple.Src
	f.hosts["dst"].Send(fb.Build(rev, []byte("still works")))
	fr := recvFrame(t, f.hosts["mb2"])
	if id, ok := packet.OuterVLAN(fr); !ok || id != tag2 {
		t.Errorf("chain 2 frame tag = %d/%v", id, ok)
	}
	// Idempotent.
	if n := f.tsa.UninstallChain(tag1); n != 0 {
		t.Errorf("second uninstall removed %d rules", n)
	}
}

func TestMigrateFlowOverridesSteering(t *testing.T) {
	f := newFabric(t, "src", "dst", "mb1", "dpi-1", "dpi-2")
	f.registerMbox(t, "mb1")
	f.sw.SetController(f.tsa)
	spec := ChainSpec{Src: "src", Dst: "dst", Elements: []string{"mb1"}}
	tag, err := f.tsa.InstallBalancedChain(spec, []string{"dpi-1"})
	if err != nil {
		t.Fatal(err)
	}
	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}, SrcPort: 7, DstPort: 80, Protocol: packet.IPProtoTCP}
	f.hosts["src"].Send(fb.Build(tuple, []byte("first")))
	recvFrame(t, f.hosts["dpi-1"])
	if inst, _ := f.tsa.InstanceOf(tuple); inst != "dpi-1" {
		t.Fatalf("flow pinned to %q", inst)
	}
	if err := f.tsa.MigrateFlow(tag, spec, tuple, "dpi-2"); err != nil {
		t.Fatal(err)
	}
	f.hosts["src"].Send(fb.Build(tuple, []byte("second")))
	recvFrame(t, f.hosts["dpi-2"])
	select {
	case <-f.hosts["dpi-1"].Inbox():
		t.Fatal("migrated flow still reached dpi-1")
	case <-time.After(20 * time.Millisecond):
	}
	if inst, _ := f.tsa.InstanceOf(tuple); inst != "dpi-2" {
		t.Errorf("InstanceOf = %q after migration", inst)
	}
}
