package sdn

import (
	"errors"
	"fmt"

	"dpiservice/internal/controller"
	"dpiservice/internal/openflow"
)

// Fabric steers policy chains across a multi-switch topology — the
// general setting of Figure 5, where middleboxes and DPI service
// instances sit at different switches and traffic is routed "to and
// from its instances" across the network. Following SIMPLE's
// tag-per-segment design, each hop element_i -> element_{i+1} of a
// chain gets its own VLAN tag derived from the chain tag, so a chain
// may cross (or revisit) a switch without rule ambiguity: rules match
// (in-port, segment tag) and rewrite the tag at each middlebox hop.
//
// Segment tags are chainTag*SegmentStride + segmentIndex, so chain tags
// must stay below MaxChains and chains may have up to SegmentStride-1
// elements.
type Fabric struct {
	dpictl *controller.Controller

	switches map[string]*openflow.Switch
	location map[string]string  // endpoint -> switch name
	adj      map[string][]trunk // switch -> trunks
}

type trunk struct {
	peer string // peer switch name
}

// Segment tag arithmetic. VLAN tags are 12 bits and the result-only
// bypass bit occupies 0x800, so segment tags must stay below 0x800.
const (
	SegmentStride = 16
	MaxChains     = 0x800 / SegmentStride // 128
)

// Fabric errors.
var (
	ErrUnknownSwitch   = errors.New("sdn: switch not in fabric")
	ErrUnplacedElement = errors.New("sdn: endpoint not placed on any switch")
	ErrNoPath          = errors.New("sdn: no trunk path between switches")
	ErrTagSpace        = errors.New("sdn: chain tag exceeds fabric tag space")
	ErrTooManyHops     = errors.New("sdn: chain has too many segments for the tag stride")
)

// NewFabric creates an empty fabric over the DPI controller.
func NewFabric(dpictl *controller.Controller) *Fabric {
	return &Fabric{
		dpictl:   dpictl,
		switches: make(map[string]*openflow.Switch),
		location: make(map[string]string),
		adj:      make(map[string][]trunk),
	}
}

// AddSwitch registers a switch.
func (f *Fabric) AddSwitch(sw *openflow.Switch) {
	f.switches[sw.Name()] = sw
}

// Trunk records an inter-switch link (the caller connects the switches
// in the virtual network; ports are resolved by name).
func (f *Fabric) Trunk(a, b *openflow.Switch) error {
	if f.switches[a.Name()] == nil || f.switches[b.Name()] == nil {
		return ErrUnknownSwitch
	}
	f.adj[a.Name()] = append(f.adj[a.Name()], trunk{peer: b.Name()})
	f.adj[b.Name()] = append(f.adj[b.Name()], trunk{peer: a.Name()})
	return nil
}

// Place records which switch an endpoint (host, middlebox or DPI
// instance) attaches to.
func (f *Fabric) Place(endpoint string, sw *openflow.Switch) error {
	if f.switches[sw.Name()] == nil {
		return ErrUnknownSwitch
	}
	f.location[endpoint] = sw.Name()
	return nil
}

// pathBetween returns the switch-name path from a to b (inclusive) via
// BFS over trunks.
func (f *Fabric) pathBetween(a, b string) ([]string, error) {
	if a == b {
		return []string{a}, nil
	}
	prev := map[string]string{a: a}
	queue := []string{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, t := range f.adj[cur] {
			if _, seen := prev[t.peer]; seen {
				continue
			}
			prev[t.peer] = cur
			if t.peer == b {
				var path []string
				for n := b; n != a; n = prev[n] {
					path = append([]string{n}, path...)
				}
				return append([]string{a}, path...), nil
			}
			queue = append(queue, t.peer)
		}
	}
	return nil, fmt.Errorf("%w: %s -> %s", ErrNoPath, a, b)
}

// InstalledChain describes the rules laid for one chain.
type InstalledChain struct {
	// Tag is the controller-assigned chain tag.
	Tag uint16
	// SegTags are the per-segment VLAN tags, segment i covering the
	// hop from path element i to element i+1 (element 0 is the
	// source).
	SegTags []uint16
	// InstanceKey is the tag the DPI instance observes on arriving
	// packets (the tag of the segment that delivers to it); alias the
	// instance's engine chain under this key.
	InstanceKey uint16
}

// InstallChainWithDPI lays fabric-wide rules for
// src -> instance -> elements... -> dst. Every endpoint must be Placed.
func (f *Fabric) InstallChainWithDPI(spec ChainSpec, instance string) (*InstalledChain, error) {
	tag, err := f.dpictl.DefineChain(spec.Elements)
	if err != nil {
		return nil, err
	}
	if int(tag) >= MaxChains {
		return nil, fmt.Errorf("%w: tag %d", ErrTagSpace, tag)
	}
	path := append([]string{spec.Src, instance}, spec.Elements...)
	path = append(path, spec.Dst)
	if len(path)-1 >= SegmentStride {
		return nil, fmt.Errorf("%w: %d segments", ErrTooManyHops, len(path)-1)
	}
	ic := &InstalledChain{Tag: tag}
	for seg := 0; seg < len(path)-1; seg++ {
		segTag := tag*SegmentStride + uint16(seg)
		ic.SegTags = append(ic.SegTags, segTag)
	}
	ic.InstanceKey = ic.SegTags[0] // segment 0 delivers to the instance

	for seg := 0; seg < len(path)-1; seg++ {
		from, to := path[seg], path[seg+1]
		if err := f.installSegment(tag, spec, seg, ic.SegTags, from, to, seg == 0, seg == len(path)-2); err != nil {
			return nil, err
		}
	}
	return ic, nil
}

// installSegment lays the rules carrying a frame from endpoint `from`
// to endpoint `to` under the segment's tag, crossing trunks as needed.
func (f *Fabric) installSegment(tag uint16, spec ChainSpec, seg int, segTags []uint16, from, to string, ingress, egress bool) error {
	fromSw, ok := f.location[from]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnplacedElement, from)
	}
	toSw, ok := f.location[to]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnplacedElement, to)
	}
	swPath, err := f.pathBetween(fromSw, toSw)
	if err != nil {
		return err
	}
	segTag := segTags[seg]

	// Rule at the first switch: frame arrives from the `from`
	// endpoint's port.
	first := f.switches[swPath[0]]
	inPort := first.PortTo(from)
	m := openflow.NewMatch()
	m.InPort = inPort
	var actions []openflow.Action
	switch {
	case ingress:
		// Classify untagged traffic from the source.
		cls := spec.Classify
		if cls.InPort == 0 && cls.VLANID == 0 {
			cls = openflow.NewMatch()
		}
		cls.InPort = inPort
		m = cls
		actions = append(actions, openflow.PushVLAN(segTag))
	default:
		// The frame still carries the PREVIOUS segment's tag (the
		// middlebox bounced it unchanged); rewrite to this segment's.
		m.VLANID = int(segTags[seg-1])
		actions = append(actions, openflow.SetVLAN(segTag))
	}
	if err := f.installToward(tag, first, swPath, 0, to, segTag, egress, m, actions); err != nil {
		return err
	}
	// Rules at intermediate/destination switches: frame arrives on the
	// trunk from the previous switch carrying this segment's tag.
	for i := 1; i < len(swPath); i++ {
		sw := f.switches[swPath[i]]
		tm := openflow.NewMatch()
		tm.InPort = sw.PortTo(swPath[i-1])
		tm.VLANID = int(segTag)
		if err := f.installToward(tag, sw, swPath, i, to, segTag, egress, tm, nil); err != nil {
			return err
		}
	}
	return nil
}

// installToward adds one rule at swPath[idx] sending the frame to the
// next hop (trunk toward swPath[idx+1], or the target endpoint's port
// on the last switch, popping the tag at final egress).
func (f *Fabric) installToward(tag uint16, sw *openflow.Switch, swPath []string, idx int, to string, segTag uint16, egress bool, m openflow.Match, pre []openflow.Action) error {
	actions := append([]openflow.Action(nil), pre...)
	if idx < len(swPath)-1 {
		actions = append(actions, openflow.Output(sw.PortTo(swPath[idx+1])))
	} else {
		if egress {
			actions = append(actions, openflow.PopVLAN())
		}
		actions = append(actions, openflow.Output(sw.PortTo(to)))
	}
	sw.AddFlowWithCookie(uint64(tag), PrioChain, m, actions...)
	return nil
}

// UninstallChain removes a chain's rules from every switch.
func (f *Fabric) UninstallChain(tag uint16) int {
	removed := 0
	for _, sw := range f.switches {
		removed += sw.DeleteFlows(uint64(tag))
	}
	return removed
}
