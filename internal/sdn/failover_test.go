package sdn

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dpiservice/internal/packet"
	"dpiservice/internal/traffic"
)

// tupleN builds the nth distinct test flow.
func tupleN(n int) packet.FiveTuple {
	return packet.FiveTuple{
		Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2},
		SrcPort: uint16(1000 + n), DstPort: 80, Protocol: packet.IPProtoTCP,
	}
}

func TestFailoverInstanceReSteersFlows(t *testing.T) {
	f := newFabric(t, "src", "dst", "mb1", "dpi-1", "dpi-2")
	f.registerMbox(t, "mb1")
	f.sw.SetController(f.tsa)
	spec := ChainSpec{Src: "src", Dst: "dst", Elements: []string{"mb1"}}
	tag, err := f.tsa.InstallBalancedChain(spec, []string{"dpi-1", "dpi-2"})
	if err != nil {
		t.Fatal(err)
	}
	var fb traffic.FrameBuilder
	// Two flows: round-robin pins flow 0 to dpi-1, flow 1 to dpi-2.
	f.hosts["src"].Send(fb.Build(tupleN(0), []byte("a")))
	recvFrame(t, f.hosts["dpi-1"])
	f.hosts["src"].Send(fb.Build(tupleN(1), []byte("b")))
	recvFrame(t, f.hosts["dpi-2"])

	moved, err := f.tsa.FailoverInstance("dpi-1", map[uint16]string{tag: "dpi-2"})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("moved = %d, want 1", moved)
	}
	if inst, _ := f.tsa.InstanceOf(tupleN(0)); inst != "dpi-2" {
		t.Fatalf("flow 0 on %q after failover", inst)
	}
	// Existing flow's traffic lands on the survivor, none on the dead
	// instance.
	f.hosts["src"].Send(fb.Build(tupleN(0), []byte("after")))
	recvFrame(t, f.hosts["dpi-2"])
	// New flows avoid the dead instance entirely.
	for n := 2; n < 5; n++ {
		f.hosts["src"].Send(fb.Build(tupleN(n), []byte("new")))
		recvFrame(t, f.hosts["dpi-2"])
	}
	select {
	case <-f.hosts["dpi-1"].Inbox():
		t.Fatal("dead instance still receives traffic")
	case <-time.After(30 * time.Millisecond):
	}

	// A stale-tag packet already emitted by the dead instance still
	// follows the chain's hop rules — late in-flight frames drain through
	// the middleboxes instead of leaking or looping.
	stale, err := packet.PushVLAN(fb.Build(tupleN(0), []byte("stale")), tag, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.hosts["dpi-1"].Send(stale)
	fr := recvFrame(t, f.hosts["mb1"])
	if id, ok := packet.OuterVLAN(fr); !ok || id != tag {
		t.Fatalf("stale frame tag = %d/%v, want %d", id, ok, tag)
	}
}

func TestFailoverWithoutReplacementDropsAndRecovers(t *testing.T) {
	f := newFabric(t, "src", "dst", "mb1", "dpi-1", "dpi-2")
	f.registerMbox(t, "mb1")
	f.sw.SetController(f.tsa)
	spec := ChainSpec{Src: "src", Dst: "dst", Elements: []string{"mb1"}}
	if _, err := f.tsa.InstallBalancedChain(spec, []string{"dpi-1", "dpi-2"}); err != nil {
		t.Fatal(err)
	}
	var fb traffic.FrameBuilder
	f.hosts["src"].Send(fb.Build(tupleN(0), []byte("a")))
	recvFrame(t, f.hosts["dpi-1"])

	// No replacement for the tag: the flow is forgotten, not re-steered.
	moved, err := f.tsa.FailoverInstance("dpi-1", nil)
	if err != nil || moved != 0 {
		t.Fatalf("moved, err = %d, %v", moved, err)
	}
	if _, ok := f.tsa.InstanceOf(tupleN(0)); ok {
		t.Fatal("unre-steerable flow still tracked")
	}
	// Its next packet falls back to packet-in and is re-steered among the
	// survivors.
	f.hosts["src"].Send(fb.Build(tupleN(0), []byte("retry")))
	recvFrame(t, f.hosts["dpi-2"])
	if inst, _ := f.tsa.InstanceOf(tupleN(0)); inst != "dpi-2" {
		t.Errorf("recovered flow on %q", inst)
	}
}

// TestFailoverConcurrentPacketIn exercises the flow-mod rewrite while
// packet-in events are steering new flows concurrently (run with
// -race). Afterwards every tracked flow must be off the dead instance
// and still deliver traffic.
func TestFailoverConcurrentPacketIn(t *testing.T) {
	f := newFabric(t, "src", "dst", "mb1", "dpi-1", "dpi-2", "dpi-3")
	f.registerMbox(t, "mb1")
	f.sw.SetController(f.tsa)
	spec := ChainSpec{Src: "src", Dst: "dst", Elements: []string{"mb1"}}
	tag, err := f.tsa.InstallBalancedChain(spec, []string{"dpi-1", "dpi-2", "dpi-3"})
	if err != nil {
		t.Fatal(err)
	}

	// Drain the DPI hosts so their inbox buffers never block the fabric.
	for _, name := range []string{"dpi-1", "dpi-2", "dpi-3", "mb1", "dst"} {
		h := f.hosts[name]
		go func() {
			for range h.Inbox() {
			}
		}()
	}

	const flows = 60
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		var fb traffic.FrameBuilder
		for n := 0; n < flows; n++ {
			f.hosts["src"].Send(fb.Build(tupleN(n), []byte(fmt.Sprintf("pkt %d", n))))
		}
	}()
	go func() {
		defer wg.Done()
		// Fail dpi-1 over mid-storm, twice (second is a no-op sweep).
		for i := 0; i < 2; i++ {
			if _, err := f.tsa.FailoverInstance("dpi-1", map[uint16]string{tag: "dpi-2"}); err != nil {
				t.Errorf("failover: %v", err)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	if !f.net.Flush(5 * time.Second) {
		t.Fatal("network never quiesced")
	}

	// Late packet-ins may still have steered to dpi-1 if they claimed the
	// flow before the failover snapshot; a final sweep must settle it.
	if _, err := f.tsa.FailoverInstance("dpi-1", map[uint16]string{tag: "dpi-2"}); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < flows; n++ {
		if inst, ok := f.tsa.InstanceOf(tupleN(n)); ok && inst == "dpi-1" {
			t.Fatalf("flow %d still pinned to dead instance", n)
		}
	}
	// The fabric still forwards: a fresh flow is steered to a survivor.
	var fb traffic.FrameBuilder
	f.hosts["src"].Send(fb.Build(tupleN(flows+1), []byte("post")))
	if !f.net.Flush(5 * time.Second) {
		t.Fatal("network never quiesced after post-failover flow")
	}
	if inst, ok := f.tsa.InstanceOf(tupleN(flows + 1)); !ok || inst == "dpi-1" {
		t.Fatalf("post-failover flow on %q, %v", inst, ok)
	}
}
