package sdn

import (
	"errors"
	"testing"
	"time"

	"dpiservice/internal/controller"
	"dpiservice/internal/core"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/middlebox"
	"dpiservice/internal/netsim"
	"dpiservice/internal/openflow"
	"dpiservice/internal/packet"
	"dpiservice/internal/patterns"
	"dpiservice/internal/traffic"
)

// multiSwitchBed builds a two-switch fabric:
//
//	s1: src, dpi-1        s2: ids-1, dst
//	      s1 ===trunk=== s2
type multiSwitchBed struct {
	net     *netsim.Network
	s1, s2  *openflow.Switch
	fabric  *Fabric
	ctl     *controller.Controller
	src     *netsim.Host
	dst     *netsim.Host
	dpiHost *netsim.Host
	idsHost *netsim.Host
}

func newMultiSwitchBed(t *testing.T) *multiSwitchBed {
	t.Helper()
	b := &multiSwitchBed{
		net: netsim.NewNetwork(),
		s1:  openflow.NewSwitch("s1"),
		s2:  openflow.NewSwitch("s2"),
		ctl: controller.New(),
	}
	t.Cleanup(b.net.Stop)
	b.fabric = NewFabric(b.ctl)
	b.fabric.AddSwitch(b.s1)
	b.fabric.AddSwitch(b.s2)
	for _, sw := range []*openflow.Switch{b.s1, b.s2} {
		if err := b.net.AddNode(sw); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.net.Connect(b.s1, b.s2, netsim.LinkOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := b.fabric.Trunk(b.s1, b.s2); err != nil {
		t.Fatal(err)
	}
	mk := func(name string, sw *openflow.Switch, last byte) *netsim.Host {
		h := netsim.NewHost(name, packet.MAC{2, 0, 0, 0, 0, last}, packet.IP4{10, 0, 0, last})
		if err := b.net.AddNode(h); err != nil {
			t.Fatal(err)
		}
		if err := b.net.Connect(h, sw, netsim.LinkOpts{}); err != nil {
			t.Fatal(err)
		}
		if err := b.fabric.Place(name, sw); err != nil {
			t.Fatal(err)
		}
		return h
	}
	b.src = mk("src", b.s1, 1)
	b.dpiHost = mk("dpi-1", b.s1, 2)
	b.idsHost = mk("ids-1", b.s2, 3)
	b.dst = mk("dst", b.s2, 4)
	return b
}

func TestFabricChainAcrossSwitches(t *testing.T) {
	b := newMultiSwitchBed(t)

	// Register the IDS and its patterns with the controller.
	if _, err := b.ctl.Register(ctlproto.Register{MboxID: "ids-1", Type: "ids"}); err != nil {
		t.Fatal(err)
	}
	if err := b.ctl.AddPatterns("ids-1", []ctlproto.PatternDef{
		{RuleID: 0, Content: []byte("needle-pattern")},
	}); err != nil {
		t.Fatal(err)
	}

	spec := ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1"}}
	ic, err := b.fabric.InstallChainWithDPI(spec, "dpi-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ic.SegTags) != 3 { // src->dpi, dpi->ids, ids->dst
		t.Fatalf("SegTags = %v", ic.SegTags)
	}

	// Build the instance engine keyed by the tag the fabric delivers
	// packets under.
	cfg, err := b.ctl.InstanceConfig([]uint16{ic.Tag}, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chains[ic.InstanceKey] = cfg.Chains[ic.Tag]
	if ic.InstanceKey != ic.Tag {
		delete(cfg.Chains, ic.Tag)
	}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	middlebox.NewDPINode("dpi-1", b.dpiHost, engine)
	counter := middlebox.NewCountLogic()
	ids := middlebox.NewConsumerNode(b.idsHost, 0, counter)

	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: b.src.IP, Dst: b.dst.IP, SrcPort: 9999, DstPort: 80, Protocol: packet.IPProtoTCP}
	b.src.Send(fb.Build(tuple, []byte("a needle-pattern rides across switches")))
	b.src.Send(fb.Build(tuple, []byte("clean payload")))

	deadline := time.Now().Add(3 * time.Second)
	dataAtDst := 0
	for time.Now().Before(deadline) && (dataAtDst < 2 || counter.Total() < 1) {
		select {
		case f := <-b.dst.Inbox():
			var s packet.Summary
			if packet.Summarize(f, &s) == nil && !s.IsReport {
				dataAtDst++
				if s.Tagged {
					t.Fatal("frame still tagged at dst")
				}
			}
		case <-time.After(2 * time.Millisecond):
		}
	}
	if dataAtDst != 2 {
		t.Errorf("dst data packets = %d, want 2", dataAtDst)
	}
	if counter.Total() != 1 {
		t.Errorf("IDS count = %d, want 1", counter.Total())
	}
	if ids.DataPackets.Load() != 2 {
		t.Errorf("IDS data packets = %d, want 2", ids.DataPackets.Load())
	}

	// Uninstall clears rules from both switches.
	removed := b.fabric.UninstallChain(ic.Tag)
	if removed == 0 || b.s1.NumFlows() != 0 || b.s2.NumFlows() != 0 {
		t.Errorf("uninstall removed %d; remaining s1=%d s2=%d",
			removed, b.s1.NumFlows(), b.s2.NumFlows())
	}
}

func TestFabricValidation(t *testing.T) {
	b := newMultiSwitchBed(t)
	if _, err := b.ctl.Register(ctlproto.Register{MboxID: "ids-1", Type: "ids"}); err != nil {
		t.Fatal(err)
	}
	// Unplaced endpoint.
	spec := ChainSpec{Src: "ghost", Dst: "dst", Elements: []string{"ids-1"}}
	if _, err := b.fabric.InstallChainWithDPI(spec, "dpi-1"); !errors.Is(err, ErrUnplacedElement) {
		t.Errorf("unplaced err = %v", err)
	}
	// Disconnected switch.
	s3 := openflow.NewSwitch("s3")
	b.fabric.AddSwitch(s3)
	if err := b.fabric.Place("island", s3); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ctl.Register(ctlproto.Register{MboxID: "island", Type: "x"}); err != nil {
		t.Fatal(err)
	}
	spec = ChainSpec{Src: "src", Dst: "dst", Elements: []string{"island"}}
	if _, err := b.fabric.InstallChainWithDPI(spec, "dpi-1"); !errors.Is(err, ErrNoPath) {
		t.Errorf("no-path err = %v", err)
	}
	// Trunk to unknown switch.
	if err := b.fabric.Trunk(s3, openflow.NewSwitch("s9")); !errors.Is(err, ErrUnknownSwitch) {
		t.Errorf("unknown switch err = %v", err)
	}
}

func TestFabricThreeSwitchLine(t *testing.T) {
	// src on s1, dst on s3, no middleboxes: a pure transit chain
	// s1 -> s2 -> s3 exercising multi-hop trunk routing.
	net := netsim.NewNetwork()
	defer net.Stop()
	ctl := controller.New()
	fab := NewFabric(ctl)
	var sws []*openflow.Switch
	for _, n := range []string{"s1", "s2", "s3"} {
		sw := openflow.NewSwitch(n)
		sws = append(sws, sw)
		fab.AddSwitch(sw)
		if err := net.AddNode(sw); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := net.Connect(sws[i], sws[i+1], netsim.LinkOpts{}); err != nil {
			t.Fatal(err)
		}
		if err := fab.Trunk(sws[i], sws[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	src := netsim.NewHost("src", packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP4{10, 0, 0, 1})
	dst := netsim.NewHost("dst", packet.MAC{2, 0, 0, 0, 0, 2}, packet.IP4{10, 0, 0, 2})
	dpi := netsim.NewHost("dpi-1", packet.MAC{2, 0, 0, 0, 0, 3}, packet.IP4{10, 0, 0, 3})
	for h, sw := range map[*netsim.Host]*openflow.Switch{src: sws[0], dst: sws[2], dpi: sws[1]} {
		if err := net.AddNode(h); err != nil {
			t.Fatal(err)
		}
		if err := net.Connect(h, sw, netsim.LinkOpts{}); err != nil {
			t.Fatal(err)
		}
		if err := fab.Place(h.Name(), sw); err != nil {
			t.Fatal(err)
		}
	}
	// The DPI node forwards unknown-tag traffic unchanged, so no
	// engine is needed for pure transit.
	middlebox.NewDPINode("dpi-1", dpi, mustEngine(t))
	ic, err := fab.InstallChainWithDPI(ChainSpec{Src: "src", Dst: "dst"}, "dpi-1")
	if err != nil {
		t.Fatal(err)
	}
	_ = ic
	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: src.IP, Dst: dst.IP, SrcPort: 5, DstPort: 80, Protocol: packet.IPProtoTCP}
	src.Send(fb.Build(tuple, []byte("transit me")))
	select {
	case f := <-dst.Inbox():
		var s packet.Summary
		if packet.Summarize(f, &s) != nil || s.Tagged {
			t.Errorf("frame at dst malformed or tagged")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("frame never crossed the three-switch line")
	}
}

// mustEngine builds a minimal engine for nodes whose scanning is not
// under test.
func mustEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(core.Config{
		Profiles: []core.Profile{{ID: 0, Patterns: mustSet()}},
		Chains:   map[uint16][]int{1: {0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustSet() *patterns.Set {
	return patterns.FromStrings("x", []string{"unused-pattern"})
}
