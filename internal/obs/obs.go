// Package obs is a dependency-free metrics layer for the DPI service:
// named atomic counters, gauges, and fixed-bucket histograms collected
// in a Registry and exported as sorted snapshots (JSON or expvar-style
// text) for the debug HTTP listener, controller load reports, and the
// dpibench regression reports.
//
// The write path (Counter.Add, Gauge.Set, Histogram.Observe) is
// read-free for collectors: a single atomic RMW per update, no locks,
// no allocation, no clock reads — safe to call from code reachable
// from a //dpi:hotpath root. Instrument lookup (Registry.Counter et
// al.) takes the registry mutex and must happen at setup time; callers
// cache the returned pointer.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use. Counters must not be copied after first use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
//
//dpi:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//dpi:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depth, active flows).
// The zero value is ready to use. Gauges must not be copied after
// first use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
//
//dpi:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrement).
//
//dpi:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets defined by a sorted
// list of inclusive upper bounds, plus an implicit overflow bucket.
// Observe is lock-free and allocation-free: a linear scan over the
// (small, fixed) bound slice and two atomic adds. Histograms must not
// be copied after first use.
type Histogram struct {
	bounds  []uint64 // sorted ascending; immutable after construction
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

func newHistogram(bounds []uint64) *Histogram {
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample of value v.
//
//dpi:hotpath
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// LatencyBounds are histogram upper bounds in nanoseconds, spanning
// 1µs..~67ms in powers of four — sized for per-packet scan and queue
// wait times.
var LatencyBounds = []uint64{
	1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18,
	1 << 20, 1 << 22, 1 << 24, 1 << 26,
}

// SizeBounds are histogram upper bounds in bytes, spanning 64B..64KiB
// in powers of four — sized for packet payload lengths.
var SizeBounds = []uint64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
}

// Registry holds named instruments. Lookup methods get-or-create under
// a mutex; the instruments themselves are updated without the lock.
// The zero value is not usable — call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Call at setup time and cache the pointer.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	c := r.ctrs[name]
	if c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	r.mu.Unlock()
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	r.mu.Unlock()
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds on first use. Later calls with the same name
// return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}
