package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"time"
)

// Health describes a daemon's /healthz identity and liveness. The zero
// value is a valid always-healthy probe with no identity.
type Health struct {
	// Service names the daemon ("dpinstance", "mboxd", ...).
	Service string
	// Version overrides the build version; empty reads the main
	// module's version from the embedded build info.
	Version string
	// Healthy reports liveness; nil means always healthy.
	Healthy func() bool
	// Details, when set, contributes a service-specific summary (e.g.
	// the controller's lease-health counts) to the healthz body.
	Details func() map[string]any
}

// buildVersion resolves the daemon's version string: an explicit
// override, else the main module version stamped by the toolchain,
// else "dev".
func (h Health) buildVersion() string {
	if h.Version != "" {
		return h.Version
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "dev"
}

// NewDebugMux builds the debug/introspection handler served behind the
// daemons' -debug-addr flag:
//
//	/metrics        registry snapshot, JSON (add ?format=text for
//	                expvar-style "name value" lines, including
//	                approximate histogram p50/p99)
//	/healthz        JSON status document (service, version, uptime,
//	                optional details); 200 while h.Healthy() reports
//	                true (nil means always healthy), 503 otherwise
//	/debug/pprof/   the standard net/http/pprof profile endpoints
//
// Daemons register additional endpoints (/trace, /flight, /instances)
// on the returned mux.
func NewDebugMux(reg *Registry, h Health) *http.ServeMux {
	start := time.Now()
	version := h.buildVersion()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		code := http.StatusOK
		if h.Healthy != nil && !h.Healthy() {
			status = "unhealthy"
			code = http.StatusServiceUnavailable
		}
		body := map[string]any{
			"status":         status,
			"version":        version,
			"uptime_seconds": int64(time.Since(start).Seconds()),
		}
		if h.Service != "" {
			body["service"] = h.Service
		}
		if h.Details != nil {
			if d := h.Details(); len(d) > 0 {
				body["details"] = d
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when the serve loop returns
}

// StartDebugServer listens on addr (host:port; port 0 picks a free
// one) and serves handler in a background goroutine that Close joins.
func StartDebugServer(addr string, handler http.Handler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: handler}, done: make(chan struct{})}
	go func() {
		defer close(d.done)
		d.srv.Serve(ln)
	}()
	return d, nil
}

// Addr returns the listener's host:port.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and any active connections, then waits for
// the serve loop to exit so no goroutine outlives the server.
func (d *DebugServer) Close() error {
	err := d.srv.Close()
	<-d.done
	return err
}
