package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the debug/introspection handler served behind the
// daemons' -debug-addr flag:
//
//	/metrics        registry snapshot, JSON (add ?format=text for
//	                expvar-style "name value" lines)
//	/healthz        200 "ok" while healthy() reports true (nil means
//	                always healthy), 503 otherwise
//	/debug/pprof/   the standard net/http/pprof profile endpoints
func NewDebugMux(reg *Registry, healthy func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if healthy != nil && !healthy() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("unhealthy\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when the serve loop returns
}

// StartDebugServer listens on addr (host:port; port 0 picks a free
// one) and serves handler in a background goroutine that Close joins.
func StartDebugServer(addr string, handler http.Handler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: handler}, done: make(chan struct{})}
	go func() {
		defer close(d.done)
		d.srv.Serve(ln)
	}()
	return d, nil
}

// Addr returns the listener's host:port.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and any active connections, then waits for
// the serve loop to exit so no goroutine outlives the server.
func (d *DebugServer) Close() error {
	err := d.srv.Close()
	<-d.done
	return err
}
