package obs

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts")
	c.Inc()
	c.Add(9)
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if r.Counter("pkts") != c {
		t.Fatal("Counter did not return the registered instance")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if r.Gauge("depth") != g {
		t.Fatal("Gauge did not return the registered instance")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sz", []uint64{10, 100})
	for _, v := range []uint64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if want := uint64(1 + 10 + 11 + 100 + 101 + 5000); h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
	hv, ok := r.Snapshot().Histogram("sz")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	counts := make([]uint64, len(hv.Buckets))
	for i, b := range hv.Buckets {
		counts[i] = b.Count
	}
	// <=10: {1,10}; <=100: {11,100}; overflow: {101,5000}.
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 2 {
		t.Fatalf("bucket counts = %v, want [2 2 2]", counts)
	}
	if !hv.Buckets[len(hv.Buckets)-1].Inf {
		t.Fatal("last bucket should be the overflow bucket")
	}
	if r.Histogram("sz", nil) != h {
		t.Fatal("Histogram did not return the registered instance")
	}
}

func TestSnapshotSortedAndSerialized(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("z").Set(-5)
	r.Histogram("h", SizeBounds).Observe(300)

	s := r.Snapshot()
	names := make([]string, len(s.Counters))
	for i, c := range s.Counters {
		names[i] = c.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("counters not sorted: %v", names)
	}
	if v, ok := s.Counter("a"); !ok || v != 1 {
		t.Fatalf("Counter(a) = %d, %v", v, ok)
	}
	if v, ok := s.Gauge("z"); !ok || v != -5 {
		t.Fatalf("Gauge(z) = %d, %v", v, ok)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if v, ok := back.Counter("b"); !ok || v != 2 {
		t.Fatalf("round-tripped Counter(b) = %d, %v", v, ok)
	}

	buf.Reset()
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"a 1\n", "b 2\n", "z -5\n", "h.count 1\n", "h.sum 300\n", "h.le.inf 0\n"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text export missing %q:\n%s", want, text)
		}
	}
}

func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBounds)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Add(1)
		g.Set(0)
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("hot-path updates allocated %v allocs/op, want 0", allocs)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, n = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat", LatencyBounds)
			for i := 0; i < n; i++ {
				c.Inc()
				h.Observe(uint64(i))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*n {
		t.Fatalf("counter = %d, want %d", got, workers*n)
	}
	if got := r.Histogram("lat", nil).Count(); got != workers*n {
		t.Fatalf("histogram count = %d, want %d", got, workers*n)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []uint64{100, 200, 400})
	// 100 observations uniformly in (0,100], none elsewhere: every
	// quantile interpolates inside the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(uint64(i))
	}
	hv, _ := r.Snapshot().Histogram("q")
	if p := hv.Quantile(0.5); p < 40 || p > 60 {
		t.Errorf("p50 = %v, want ~50", p)
	}
	if p := hv.Quantile(0.99); p < 90 || p > 100 {
		t.Errorf("p99 = %v, want ~99", p)
	}
	if p := hv.Quantile(1); p != 100 {
		t.Errorf("p100 = %v, want 100", p)
	}

	// Overflow observations clamp to the last finite bound.
	h2 := r.Histogram("q2", []uint64{100})
	h2.Observe(5000)
	hv2, _ := r.Snapshot().Histogram("q2")
	if p := hv2.Quantile(0.5); p != 100 {
		t.Errorf("overflow p50 = %v, want clamp to 100", p)
	}

	// Empty histogram reports 0.
	if p := (HistogramValue{}).Quantile(0.5); p != 0 {
		t.Errorf("empty quantile = %v, want 0", p)
	}
}

func TestWriteTextQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []uint64{100, 1000})
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "lat.p50 ") || !strings.Contains(out, "lat.p99 ") {
		t.Fatalf("WriteText missing quantile lines:\n%s", out)
	}
}
