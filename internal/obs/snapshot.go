package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// CounterValue is one counter reading in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge reading in a snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramBucket is one bucket of a histogram snapshot. The overflow
// bucket has Inf set instead of an upper bound.
type HistogramBucket struct {
	UpperBound uint64 `json:"le,omitempty"`
	Inf        bool   `json:"inf,omitempty"`
	Count      uint64 `json:"count"`
}

// HistogramValue is one histogram reading in a snapshot.
type HistogramValue struct {
	Name    string            `json:"name"`
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Quantile returns an approximation of the p-quantile (0 <= p <= 1) of
// the observations, assuming a uniform distribution within each bucket
// (linear interpolation between bucket bounds). Observations that
// landed in the overflow bucket clamp to the last finite bound — the
// histogram cannot resolve beyond its range. Returns 0 for an empty
// histogram.
func (h HistogramValue) Quantile(p float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.Count)
	var cum, lower uint64
	for _, b := range h.Buckets {
		prev := cum
		cum += b.Count
		if float64(cum) >= rank && b.Count > 0 {
			if b.Inf {
				return float64(lower)
			}
			frac := (rank - float64(prev)) / float64(b.Count)
			return float64(lower) + frac*(float64(b.UpperBound)-float64(lower))
		}
		if !b.Inf {
			lower = b.UpperBound
		}
	}
	return float64(lower)
}

// Snapshot is a point-in-time reading of every instrument in a
// registry, each section sorted by name. Snapshots are plain data:
// safe to copy, compare, and marshal.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot reads every instrument. Individual reads are atomic; the
// snapshot as a whole is not a consistent cut across instruments,
// which is fine for monitoring and for monotonicity checks.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	ctrs := make(map[string]*Counter, len(r.ctrs))
	for k, v := range r.ctrs {
		ctrs[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := &Snapshot{}
	for name, c := range ctrs {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range hists {
		hv := HistogramValue{Name: name, Count: h.Count(), Sum: h.Sum()}
		for i := range h.buckets {
			b := HistogramBucket{Count: h.buckets[i].Load()}
			if i < len(h.bounds) {
				b.UpperBound = h.bounds[i]
			} else {
				b.Inf = true
			}
			hv.Buckets = append(hv.Buckets, b)
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter returns the value of the named counter in the snapshot.
func (s *Snapshot) Counter(name string) (uint64, bool) {
	for i := range s.Counters {
		if s.Counters[i].Name == name {
			return s.Counters[i].Value, true
		}
	}
	return 0, false
}

// Gauge returns the value of the named gauge in the snapshot.
func (s *Snapshot) Gauge(name string) (int64, bool) {
	for i := range s.Gauges {
		if s.Gauges[i].Name == name {
			return s.Gauges[i].Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram reading in the snapshot.
func (s *Snapshot) Histogram(name string) (HistogramValue, bool) {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return s.Histograms[i], true
		}
	}
	return HistogramValue{}, false
}

// WriteJSON marshals the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot in expvar-style lines, one
// "name value" pair per line; histograms expand into name.count,
// name.sum, approximate name.p50/name.p99 quantiles (when non-empty),
// and per-bucket name.le.<bound> lines.
func (s *Snapshot) WriteText(w io.Writer) error {
	var buf []byte
	var firstErr error
	line := func(name string, v uint64) {
		buf = append(buf[:0], name...)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, v, 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, c := range s.Counters {
		line(c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		buf = append(buf[:0], g.Name...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, g.Value, 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, h := range s.Histograms {
		line(h.Name+".count", h.Count)
		line(h.Name+".sum", h.Sum)
		if h.Count > 0 {
			line(h.Name+".p50", uint64(h.Quantile(0.50)))
			line(h.Name+".p99", uint64(h.Quantile(0.99)))
		}
		for _, b := range h.Buckets {
			if b.Inf {
				line(h.Name+".le.inf", b.Count)
			} else {
				line(h.Name+".le."+strconv.FormatUint(b.UpperBound, 10), b.Count)
			}
		}
	}
	return firstErr
}
