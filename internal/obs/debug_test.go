package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("core.packets").Add(42)
	reg.Histogram("core.payload_bytes", SizeBounds).Observe(512)
	var healthy atomic.Bool
	healthy.Store(true)

	srv, err := StartDebugServer("127.0.0.1:0", NewDebugMux(reg, Health{
		Service: "test-daemon",
		Healthy: healthy.Load,
		Details: func() map[string]any { return map[string]any{"mode": "unit-test"} },
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, body)
	}
	if v, ok := snap.Counter("core.packets"); !ok || v != 42 {
		t.Fatalf("core.packets = %d, %v", v, ok)
	}

	code, body = get(t, base+"/metrics?format=text")
	if code != http.StatusOK || !strings.Contains(body, "core.packets 42\n") {
		t.Fatalf("/metrics?format=text = %d:\n%s", code, body)
	}

	code, body = get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	var hz struct {
		Status  string         `json:"status"`
		Service string         `json:"service"`
		Version string         `json:"version"`
		Uptime  *int64         `json:"uptime_seconds"`
		Details map[string]any `json:"details"`
	}
	if err := json.Unmarshal([]byte(body), &hz); err != nil {
		t.Fatalf("/healthz is not JSON: %v\n%s", err, body)
	}
	if hz.Status != "ok" || hz.Service != "test-daemon" || hz.Version == "" || hz.Uptime == nil {
		t.Fatalf("/healthz body = %+v", hz)
	}
	if hz.Details["mode"] != "unit-test" {
		t.Fatalf("/healthz details = %v", hz.Details)
	}
	healthy.Store(false)
	code, body = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"unhealthy"`) {
		t.Fatalf("/healthz while unhealthy = %d %q, want 503", code, body)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d:\n%s", code, body)
	}
}
