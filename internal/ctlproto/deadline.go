package ctlproto

import (
	"context"
	"net"
	"time"

	"dpiservice/internal/packet"
)

// This file makes the wire functions interruptible. The plain framing
// calls (ReadMsg, WriteDataPacket, ...) block for as long as the peer
// does — a hung or partitioned DPI instance wedges its caller forever.
// The *Ctx variants bound every call with a context: a deadline maps
// onto the connection's I/O deadline, and cancellation aborts the
// in-flight read or write by expiring it immediately.

// aLongTimeAgo is the deadline used to force an in-flight I/O call to
// return when the context is canceled (the net package's own idiom).
var aLongTimeAgo = time.Unix(1, 0)

// armDeadline applies ctx's deadline to conn and arranges for
// cancellation to interrupt in-flight I/O. The returned stop function
// must be called when the operation finishes; it releases the watcher
// and reports whether the context had fired.
func armDeadline(ctx context.Context, conn net.Conn) (stop func() bool) {
	dl, hasDL := ctx.Deadline()
	if !hasDL {
		dl = time.Time{} // clear any previous deadline
	}
	_ = conn.SetDeadline(dl)
	if ctx.Done() == nil {
		return func() bool { return false }
	}
	cancel := context.AfterFunc(ctx, func() {
		_ = conn.SetDeadline(aLongTimeAgo)
	})
	return func() bool { return !cancel() }
}

// wrapCtxErr surfaces the context's error when it caused the failure,
// so callers see context.DeadlineExceeded/Canceled instead of a bare
// net timeout.
func wrapCtxErr(ctx context.Context, fired bool, err error) error {
	if err == nil {
		return nil
	}
	if ctxErr := ctx.Err(); fired && ctxErr != nil {
		return ctxErr
	}
	return err
}

// WriteMsgCtx is WriteMsg bounded by ctx.
//
//dpi:ctx
func WriteMsgCtx(ctx context.Context, conn net.Conn, typ MsgType, seq uint64, body any) error {
	stop := armDeadline(ctx, conn)
	err := WriteMsg(conn, typ, seq, body)
	return wrapCtxErr(ctx, stop(), err)
}

// ReadMsgCtx is ReadMsg bounded by ctx.
//
//dpi:ctx
func ReadMsgCtx(ctx context.Context, conn net.Conn) (*Envelope, error) {
	stop := armDeadline(ctx, conn)
	env, err := ReadMsg(conn)
	return env, wrapCtxErr(ctx, stop(), err)
}

// WriteDataPacketCtx is WriteDataPacket bounded by ctx.
//
//dpi:ctx
func WriteDataPacketCtx(ctx context.Context, conn net.Conn, tag uint16, tuple packet.FiveTuple, payload []byte) error {
	stop := armDeadline(ctx, conn)
	err := WriteDataPacket(conn, tag, tuple, payload)
	return wrapCtxErr(ctx, stop(), err)
}

// ReadDataPacketCtx is ReadDataPacket bounded by ctx.
//
//dpi:ctx
func ReadDataPacketCtx(ctx context.Context, conn net.Conn, buf []byte) (tag uint16, tuple packet.FiveTuple, payload []byte, err error) {
	stop := armDeadline(ctx, conn)
	tag, tuple, payload, err = ReadDataPacket(conn, buf)
	return tag, tuple, payload, wrapCtxErr(ctx, stop(), err)
}

// WriteResultFrameCtx is WriteResultFrame bounded by ctx.
//
//dpi:ctx
func WriteResultFrameCtx(ctx context.Context, conn net.Conn, encodedReport []byte) error {
	stop := armDeadline(ctx, conn)
	err := WriteResultFrame(conn, encodedReport)
	return wrapCtxErr(ctx, stop(), err)
}

// ReadResultFrameCtx is ReadResultFrame bounded by ctx.
//
//dpi:ctx
func ReadResultFrameCtx(ctx context.Context, conn net.Conn, buf []byte) ([]byte, error) {
	stop := armDeadline(ctx, conn)
	out, err := ReadResultFrame(conn, buf)
	return out, wrapCtxErr(ctx, stop(), err)
}
