package ctlproto

import (
	"sync/atomic"

	"dpiservice/internal/obs"
)

// Wire metrics are package-global because the framing functions are
// free functions shared by every connection: a daemon opts in once via
// EnableMetrics and all subsequent reads/writes are counted. The
// pointer is swapped atomically, the per-type counter map is built
// read-only at install time, and the nil default keeps the uncounted
// path to a single atomic load.
type wireMetrics struct {
	msgsRead     *obs.Counter
	msgsWritten  *obs.Counter
	bytesRead    *obs.Counter
	bytesWritten *obs.Counter
	// perType counts envelopes by type, read and written combined.
	// Read-only after construction.
	perType map[MsgType]*obs.Counter

	dataPacketsIn  *obs.Counter
	dataBytesIn    *obs.Counter
	dataPacketsOut *obs.Counter
	dataBytesOut   *obs.Counter
	resultsIn      *obs.Counter
	resultsOut     *obs.Counter
}

var wireMet atomic.Pointer[wireMetrics]

// EnableMetrics counts all ctlproto control and data-plane traffic in
// this process into reg (pass nil to disable again). Intended for the
// daemons; libraries and tests that share the process see the same
// global switch.
func EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		wireMet.Store(nil)
		return
	}
	m := &wireMetrics{
		msgsRead:       reg.Counter("ctlproto.msgs_read"),
		msgsWritten:    reg.Counter("ctlproto.msgs_written"),
		bytesRead:      reg.Counter("ctlproto.bytes_read"),
		bytesWritten:   reg.Counter("ctlproto.bytes_written"),
		perType:        make(map[MsgType]*obs.Counter),
		dataPacketsIn:  reg.Counter("ctlproto.data_packets_in"),
		dataBytesIn:    reg.Counter("ctlproto.data_bytes_in"),
		dataPacketsOut: reg.Counter("ctlproto.data_packets_out"),
		dataBytesOut:   reg.Counter("ctlproto.data_bytes_out"),
		resultsIn:      reg.Counter("ctlproto.result_frames_in"),
		resultsOut:     reg.Counter("ctlproto.result_frames_out"),
	}
	for _, t := range []MsgType{
		TypeRegister, TypeRegisterAck, TypeDeregister,
		TypeAddPatterns, TypeRemovePatterns, TypePolicyChains,
		TypeInstanceHello, TypeInstanceInit, TypeTelemetry,
		TypeLease, TypeLeaseAck, TypeSession, TypeSessionAck,
		TypeMigrateFlows, TypeAck, TypeError,
	} {
		m.perType[t] = reg.Counter("ctlproto.msg." + string(t))
	}
	wireMet.Store(m)
}

func (m *wireMetrics) countMsg(typ MsgType) {
	if c := m.perType[typ]; c != nil {
		c.Inc()
	}
}
