package ctlproto

import (
	"bytes"
	"testing"

	"dpiservice/internal/obs"
	"dpiservice/internal/packet"
)

func TestWireMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	var buf bytes.Buffer
	if err := WriteMsg(&buf, TypeRegister, 1, Register{MboxID: "ids-1"}); err != nil {
		t.Fatal(err)
	}
	wireLen := buf.Len()
	env, err := ReadMsg(&buf)
	if err != nil || env.Type != TypeRegister {
		t.Fatalf("ReadMsg: %v (%v)", env, err)
	}

	tuple := packet.FiveTuple{Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}, SrcPort: 1000, DstPort: 80, Protocol: packet.IPProtoTCP}
	if err := WriteDataPacket(&buf, 7, tuple, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadDataPacket(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteResultFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResultFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	for name, want := range map[string]uint64{
		"ctlproto.msgs_written":      1,
		"ctlproto.msgs_read":         1,
		"ctlproto.bytes_written":     uint64(wireLen),
		"ctlproto.bytes_read":        uint64(wireLen),
		"ctlproto.msg.register":      2, // one write + one read
		"ctlproto.data_packets_out":  1,
		"ctlproto.data_packets_in":   1,
		"ctlproto.result_frames_out": 1,
		"ctlproto.result_frames_in":  1,
	} {
		if got, ok := s.Counter(name); !ok || got != want {
			t.Errorf("%s = %d (present=%v), want %d", name, got, ok, want)
		}
	}

	// Disabled again: traffic no longer counts.
	EnableMetrics(nil)
	if err := WriteMsg(&buf, TypeAck, 2, Ack{AckSeq: 1}); err != nil {
		t.Fatal(err)
	}
	if got, _ := reg.Snapshot().Counter("ctlproto.msgs_written"); got != 1 {
		t.Errorf("msgs_written after disable = %d, want 1", got)
	}
}
