package ctlproto

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"dpiservice/internal/packet"
)

var dpTuple = packet.FiveTuple{
	Src: packet.IP4{10, 1, 2, 3}, Dst: packet.IP4{10, 4, 5, 6},
	SrcPort: 1234, DstPort: 80, Protocol: packet.IPProtoTCP,
}

func TestDataPacketRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("some payload bytes \x00\xff")
	if err := WriteDataPacket(&buf, 42, dpTuple, payload); err != nil {
		t.Fatal(err)
	}
	tag, tuple, got, err := ReadDataPacket(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tag != 42 || tuple != dpTuple || !bytes.Equal(got, payload) {
		t.Errorf("round trip: tag=%d tuple=%v payload=%q", tag, tuple, got)
	}
}

func TestDataPacketEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDataPacket(&buf, 1, dpTuple, nil); err != nil {
		t.Fatal(err)
	}
	_, _, got, err := ReadDataPacket(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("payload = %q", got)
	}
}

func TestDataPacketOversize(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, MaxDataPayload+1)
	if err := WriteDataPacket(&buf, 1, dpTuple, big); err != ErrPayloadTooLarge {
		t.Errorf("write oversize err = %v", err)
	}
	// A forged oversize header is rejected on read.
	hdr := make([]byte, 19)
	hdr[15], hdr[16], hdr[17], hdr[18] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, _, err := ReadDataPacket(bytes.NewReader(hdr), nil); err != ErrPayloadTooLarge {
		t.Errorf("read oversize err = %v", err)
	}
}

func TestDataPacketTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDataPacket(&buf, 9, dpTuple, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, err := ReadDataPacket(bytes.NewReader(full[:cut]), nil); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestResultFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	report := []byte{1, 2, 3, 4, 5}
	if err := WriteResultFrame(&buf, report); err != nil {
		t.Fatal(err)
	}
	if err := WriteResultFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResultFrame(&buf, nil)
	if err != nil || !bytes.Equal(got, report) {
		t.Errorf("first frame = %v, %v", got, err)
	}
	got, err = ReadResultFrame(&buf, got)
	if err != nil || got != nil {
		t.Errorf("empty frame = %v, %v", got, err)
	}
	if _, err := ReadResultFrame(&buf, nil); err != io.EOF {
		t.Errorf("drained err = %v", err)
	}
	// Oversize claim.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadResultFrame(bytes.NewReader(hdr), nil); err != ErrPayloadTooLarge {
		t.Errorf("oversize err = %v", err)
	}
}

func TestDataPlaneStreamProperty(t *testing.T) {
	// Alternating data packets and result frames over one stream
	// round-trip in order with buffer reuse.
	f := func(payloads [][]byte, tags []uint16) bool {
		var buf bytes.Buffer
		n := len(payloads)
		if len(tags) < n {
			n = len(tags)
		}
		var want [][]byte
		for i := 0; i < n; i++ {
			p := payloads[i]
			if len(p) > 1024 {
				p = p[:1024]
			}
			if err := WriteDataPacket(&buf, tags[i], dpTuple, p); err != nil {
				return false
			}
			want = append(want, p)
		}
		var scratch []byte
		for i := 0; i < n; i++ {
			tag, _, got, err := ReadDataPacket(&buf, scratch)
			if err != nil || tag != tags[i] || !bytes.Equal(got, want[i]) {
				return false
			}
			scratch = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
