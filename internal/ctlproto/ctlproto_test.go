package ctlproto

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reg := Register{MboxID: "ids-1", Name: "edge IDS", Type: "ids", Stateful: true, ReadOnly: true, StopAfter: 4096}
	if err := WriteMsg(&buf, TypeRegister, 7, reg); err != nil {
		t.Fatal(err)
	}
	env, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != TypeRegister || env.Seq != 7 {
		t.Errorf("envelope = %+v", env)
	}
	var got Register
	if err := env.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, reg) {
		t.Errorf("decoded %+v, want %+v", got, reg)
	}
}

func TestBinaryPatternsSurviveJSON(t *testing.T) {
	var buf bytes.Buffer
	msg := AddPatterns{
		MboxID: "av-1",
		Patterns: []PatternDef{
			{RuleID: 1, Content: []byte{0x00, 0xff, 0x1f, 0x8b, '"', '\\'}},
			{RuleID: 2, Regex: `evil\d+`},
		},
	}
	if err := WriteMsg(&buf, TypeAddPatterns, 1, msg); err != nil {
		t.Fatal(err)
	}
	env, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got AddPatterns
	if err := env.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Errorf("decoded %+v, want %+v", got, msg)
	}
}

func TestMultipleMessagesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(0); i < 5; i++ {
		if err := WriteMsg(&buf, TypeAck, i, Ack{AckSeq: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5; i++ {
		env, err := ReadMsg(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var a Ack
		if err := env.Decode(&a); err != nil {
			t.Fatal(err)
		}
		if a.AckSeq != i {
			t.Errorf("ack %d out of order: %d", i, a.AckSeq)
		}
	}
	if _, err := ReadMsg(&buf); err != io.EOF {
		t.Errorf("after drain: err = %v, want EOF", err)
	}
}

func TestReadMsgMalformed(t *testing.T) {
	// Truncated header.
	if _, err := ReadMsg(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Error("truncated header accepted")
	}
	// Length longer than body.
	var b bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	b.Write(hdr[:])
	b.WriteString(`{"type":"ack"}`)
	if _, err := ReadMsg(&b); err == nil {
		t.Error("truncated body accepted")
	}
	// Oversized claim.
	binary.BigEndian.PutUint32(hdr[:], MaxMessageLen+1)
	if _, err := ReadMsg(bytes.NewReader(hdr[:])); err != ErrMessageTooLarge {
		t.Errorf("oversize err = %v", err)
	}
	// Invalid JSON.
	payload := []byte("{not json")
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := ReadMsg(bytes.NewReader(append(hdr[:], payload...))); err == nil {
		t.Error("bad JSON accepted")
	}
	// Valid JSON, missing type.
	payload = []byte(`{"seq":1}`)
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := ReadMsg(bytes.NewReader(append(hdr[:], payload...))); err != ErrBadEnvelope {
		t.Error("typeless envelope accepted")
	}
}

func TestOverNetPipe(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	done := make(chan error, 1)
	go func() {
		done <- WriteMsg(c1, TypeInstanceInit, 3, InstanceInit{
			InstanceID: "dpi-1",
			Profiles: []ProfileDef{{
				Set: 0, Mboxes: []string{"ids-1"}, Patterns: []PatternDef{{RuleID: 0, Content: []byte("sig")}},
			}},
			Chains: []ChainDef{{Tag: 1, Members: []string{"ids-1"}}},
		})
	}()
	env, err := ReadMsg(c2)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	var init InstanceInit
	if err := env.Decode(&init); err != nil {
		t.Fatal(err)
	}
	if init.InstanceID != "dpi-1" || len(init.Profiles) != 1 || init.Chains[0].Tag != 1 {
		t.Errorf("init = %+v", init)
	}
}

func TestEnvelopeRoundTripProperty(t *testing.T) {
	f := func(seq uint64, instID string, pkts, bts uint64) bool {
		var buf bytes.Buffer
		tel := Telemetry{InstanceID: instID, Packets: pkts, Bytes: bts}
		if err := WriteMsg(&buf, TypeTelemetry, seq, tel); err != nil {
			return false
		}
		env, err := ReadMsg(&buf)
		if err != nil || env.Seq != seq || env.Type != TypeTelemetry {
			return false
		}
		var got Telemetry
		return env.Decode(&got) == nil && reflect.DeepEqual(got, tel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
