package ctlproto

import (
	"encoding/binary"
	"errors"
	"io"

	"dpiservice/internal/packet"
)

// This file defines the minimal framed data-plane protocol the
// standalone daemons (cmd/dpinstance, cmd/trafficgen) speak over TCP:
// the sender frames {chain tag, five-tuple, payload}; the instance
// replies with the encoded match report, zero-length when the packet
// had no matches. It stands in for the switch fabric when the service
// runs as separate OS processes rather than inside the virtual network.

// MaxDataPayload bounds one framed payload.
const MaxDataPayload = 1 << 20

// ErrPayloadTooLarge is returned for oversized frames.
var ErrPayloadTooLarge = errors.New("ctlproto: data payload exceeds MaxDataPayload")

const dataHdrLen = 2 + 13 + 4

// WriteDataPacket frames one packet toward a DPI instance.
func WriteDataPacket(w io.Writer, tag uint16, tuple packet.FiveTuple, payload []byte) error {
	if len(payload) > MaxDataPayload {
		return ErrPayloadTooLarge
	}
	var hdr [dataHdrLen]byte
	binary.BigEndian.PutUint16(hdr[0:2], tag)
	copy(hdr[2:6], tuple.Src[:])
	copy(hdr[6:10], tuple.Dst[:])
	binary.BigEndian.PutUint16(hdr[10:12], tuple.SrcPort)
	binary.BigEndian.PutUint16(hdr[12:14], tuple.DstPort)
	hdr[14] = tuple.Protocol
	binary.BigEndian.PutUint32(hdr[15:19], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	if m := wireMet.Load(); m != nil {
		m.dataPacketsOut.Inc()
		m.dataBytesOut.Add(uint64(len(hdr) + len(payload)))
	}
	return nil
}

// ReadDataPacket reads one framed packet. The payload is appended to
// buf (which may be nil) to allow reuse.
func ReadDataPacket(r io.Reader, buf []byte) (tag uint16, tuple packet.FiveTuple, payload []byte, err error) {
	var hdr [dataHdrLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, tuple, nil, err
	}
	tag = binary.BigEndian.Uint16(hdr[0:2])
	copy(tuple.Src[:], hdr[2:6])
	copy(tuple.Dst[:], hdr[6:10])
	tuple.SrcPort = binary.BigEndian.Uint16(hdr[10:12])
	tuple.DstPort = binary.BigEndian.Uint16(hdr[12:14])
	tuple.Protocol = hdr[14]
	n := binary.BigEndian.Uint32(hdr[15:19])
	if n > MaxDataPayload {
		return 0, tuple, nil, ErrPayloadTooLarge
	}
	payload = append(buf[:0], make([]byte, n)...)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, tuple, nil, err
	}
	if m := wireMet.Load(); m != nil {
		m.dataPacketsIn.Inc()
		m.dataBytesIn.Add(uint64(dataHdrLen) + uint64(n))
	}
	return tag, tuple, payload, nil
}

// WriteResultFrame sends one encoded report back (empty for no match).
func WriteResultFrame(w io.Writer, encodedReport []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(encodedReport)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(encodedReport) > 0 {
		if _, err := w.Write(encodedReport); err != nil {
			return err
		}
	}
	if m := wireMet.Load(); m != nil {
		m.resultsOut.Inc()
	}
	return nil
}

// ReadResultFrame reads one result frame; nil means no matches.
func ReadResultFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxDataPayload {
		return nil, ErrPayloadTooLarge
	}
	var out []byte
	if n > 0 {
		out = append(buf[:0], make([]byte, n)...)
		if _, err := io.ReadFull(r, out); err != nil {
			return nil, err
		}
	}
	if m := wireMet.Load(); m != nil {
		m.resultsIn.Inc()
	}
	return out, nil
}
