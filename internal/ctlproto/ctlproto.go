// Package ctlproto defines the JSON control protocol between
// middleboxes, the DPI controller and DPI service instances
// (Section 4.1 of the paper): registration (including pattern-set
// inheritance and the read-only and stateful flags), pattern add/remove,
// policy-chain distribution, instance initialization, telemetry export
// and flow-migration directives (Sections 4.3 and 4.3.1).
//
// Messages travel as length-prefixed JSON envelopes over a direct
// (possibly secured) connection.
package ctlproto

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MsgType discriminates envelope payloads.
type MsgType string

// Protocol message types.
const (
	TypeRegister       MsgType = "register"
	TypeRegisterAck    MsgType = "register_ack"
	TypeDeregister     MsgType = "deregister"
	TypeAddPatterns    MsgType = "add_patterns"
	TypeRemovePatterns MsgType = "remove_patterns"
	TypePolicyChains   MsgType = "policy_chains"
	TypeInstanceHello  MsgType = "instance_hello"
	TypeInstanceInit   MsgType = "instance_init"
	TypeTelemetry      MsgType = "telemetry"
	TypeLease          MsgType = "lease"
	TypeLeaseAck       MsgType = "lease_ack"
	TypeSession        MsgType = "session"
	TypeSessionAck     MsgType = "session_ack"
	TypeMigrateFlows   MsgType = "migrate_flows"
	TypeAck            MsgType = "ack"
	TypeError          MsgType = "error"
)

// Envelope frames every message.
type Envelope struct {
	Type MsgType         `json:"type"`
	Seq  uint64          `json:"seq"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Register is sent by a middlebox to join the DPI service. The
// middlebox's unique ID and the controller address are preconfigured
// (the paper deploys no bootstrap procedure).
type Register struct {
	// MboxID is the middlebox's preconfigured unique identifier.
	MboxID string `json:"mbox_id"`
	// Name is the human-readable middlebox name.
	Name string `json:"name"`
	// Type is the middlebox type (ids, av, l7fw, shaper, lb, dlp, ...);
	// middleboxes of one type share a pattern-set identifier.
	Type string `json:"mbox_type"`
	// Stateful requests scan state maintained across the packets of a
	// flow.
	Stateful bool `json:"stateful,omitempty"`
	// ReadOnly declares that the middlebox needs only pattern-match
	// results, not the packets themselves.
	ReadOnly bool `json:"read_only,omitempty"`
	// StopAfter is the middlebox's stopping condition in bytes of L7
	// payload; 0 means unlimited.
	StopAfter int `json:"stop_after,omitempty"`
	// InheritFrom names an already-registered middlebox whose pattern
	// set this one adopts.
	InheritFrom string `json:"inherit_from,omitempty"`
	// FailMode declares how the middlebox degrades when DPI results
	// stop arriving (a dead or partitioned instance): FailOpen forwards
	// traffic unscanned, FailClosed drops it. Empty selects
	// DefaultFailMode for the middlebox's read-only flag.
	FailMode string `json:"fail_mode,omitempty"`
}

// Degraded-mode policies for Register.FailMode.
const (
	// FailOpen passes traffic unscanned while DPI results are missing —
	// acceptable for monitoring-only middleboxes (IDS).
	FailOpen = "fail-open"
	// FailClosed drops traffic while DPI results are missing — the safe
	// default for enforcing middleboxes (IPS, AV, L7 firewall), which
	// must not let unscanned traffic through.
	FailClosed = "fail-closed"
)

// DefaultFailMode selects the degraded-mode policy for a middlebox that
// did not declare one: read-only (monitoring) middleboxes fail open,
// enforcing middleboxes fail closed.
func DefaultFailMode(readOnly bool) string {
	if readOnly {
		return FailOpen
	}
	return FailClosed
}

// Deregister removes a middlebox; its pattern references are dropped
// and shared patterns survive only while other middleboxes reference
// them (Section 4.1).
type Deregister struct {
	MboxID string `json:"mbox_id"`
}

// RegisterAck acknowledges a registration.
type RegisterAck struct {
	MboxID string `json:"mbox_id"`
	// Set is the pattern-set index assigned by the controller; match
	// report sections for this middlebox carry it.
	Set int `json:"set"`
	// WireToken is the controller-issued session token the middlebox
	// presents when dialing wire-transport servers (DPI instances).
	WireToken uint64 `json:"wire_token,omitempty"`
	// WireKey is the cluster key for validating wire session tokens; a
	// middlebox that runs its own wire server (a verdict consumer)
	// needs it to authenticate connecting instances.
	WireKey uint64 `json:"wire_key,omitempty"`
}

// PatternDef describes one pattern in add/remove messages. Content is
// base64 on the wire (encoding/json's []byte rule) because patterns
// may be arbitrary binary.
type PatternDef struct {
	// RuleID is the pattern's identifier within the middlebox's rule
	// set, echoed back in match reports.
	RuleID  int    `json:"rule_id"`
	Content []byte `json:"content,omitempty"`
	// Regex, when set, carries a regular expression instead of exact
	// bytes.
	Regex string `json:"regex,omitempty"`
}

// AddPatterns adds patterns to the sender's set.
type AddPatterns struct {
	MboxID   string       `json:"mbox_id"`
	Patterns []PatternDef `json:"patterns"`
}

// RemovePatterns removes the sender's reference to the given rule IDs.
// A pattern shared with other middleboxes survives until its last
// reference is removed (Section 4.1).
type RemovePatterns struct {
	MboxID  string `json:"mbox_id"`
	RuleIDs []int  `json:"rule_ids"`
}

// ChainDef is one policy chain as the TSA reports it.
type ChainDef struct {
	// Tag is the chain identifier pushed onto packets (VLAN/MPLS).
	Tag uint16 `json:"tag"`
	// Members are middlebox IDs in traversal order.
	Members []string `json:"members"`
}

// PolicyChains distributes the current chain set (TSA to controller, or
// controller to instances).
type PolicyChains struct {
	Chains []ChainDef `json:"chains"`
}

// ProfileDef carries one pattern-set profile in InstanceInit. Mboxes
// lists the registered middlebox IDs sharing the set, so chain member
// references resolve on the instance side.
type ProfileDef struct {
	Set       int          `json:"set"`
	Mboxes    []string     `json:"mboxes,omitempty"`
	Name      string       `json:"name"`
	Stateful  bool         `json:"stateful,omitempty"`
	ReadOnly  bool         `json:"read_only,omitempty"`
	StopAfter int          `json:"stop_after,omitempty"`
	Patterns  []PatternDef `json:"patterns"`
}

// InstanceHello is sent by a starting DPI service instance to request
// its initialization. Empty Chains asks to serve every chain.
type InstanceHello struct {
	InstanceID string   `json:"instance_id"`
	Chains     []uint16 `json:"chains,omitempty"`
	// Dedicated marks an MCA² dedicated instance; the controller
	// configures it with the compact automaton (Section 4.3.1).
	Dedicated bool `json:"dedicated,omitempty"`
}

// InstanceInit initializes a DPI service instance with the pattern sets
// and chain mapping it must serve (Section 5.1). Compact selects the
// low-memory automaton used for MCA² dedicated instances.
type InstanceInit struct {
	InstanceID string       `json:"instance_id"`
	Profiles   []ProfileDef `json:"profiles"`
	Chains     []ChainDef   `json:"chains"`
	Compact    bool         `json:"compact,omitempty"`
	Decompress bool         `json:"decompress,omitempty"`
	// Version is the controller's configuration version the message
	// was derived from; an instance re-requesting its configuration
	// can skip rebuilding when it is unchanged.
	Version uint64 `json:"version"`
	// WireKey is the cluster key the instance's wire-transport server
	// uses to validate session tokens on incoming data frames.
	WireKey uint64 `json:"wire_key,omitempty"`
	// WireToken is the instance's own session token, presented when it
	// dials middlebox verdict consumers over the wire transport.
	WireToken uint64 `json:"wire_token,omitempty"`
}

// FlowKey identifies one flow in telemetry and migration messages.
type FlowKey struct {
	Src      string `json:"src"`
	Dst      string `json:"dst"`
	SrcPort  uint16 `json:"src_port"`
	DstPort  uint16 `json:"dst_port"`
	Protocol uint8  `json:"protocol"`
}

// FlowTelemetry is per-flow load data.
type FlowTelemetry struct {
	Flow    FlowKey `json:"flow"`
	Bytes   uint64  `json:"bytes"`
	Matches uint64  `json:"matches"`
}

// Telemetry is the periodic instance report the controller's stress
// monitor consumes (Section 4.3.1).
type Telemetry struct {
	InstanceID   string          `json:"instance_id"`
	Packets      uint64          `json:"packets"`
	Bytes        uint64          `json:"bytes"`
	BytesScanned uint64          `json:"bytes_scanned"`
	Matches      uint64          `json:"matches"`
	HeavyFlows   []FlowTelemetry `json:"heavy_flows,omitempty"`
}

// Lease renews a DPI service instance's liveness lease with the
// controller. An instance that misses renewals is marked Suspect and
// then Dead, at which point the controller re-steers its chains to
// surviving instances (Section 4.3's failure handling).
type Lease struct {
	InstanceID string `json:"instance_id"`
}

// LeaseAck acknowledges a lease renewal, telling the instance how long
// the lease is valid and the controller's current configuration version
// (so a lagging instance knows to re-request its configuration).
type LeaseAck struct {
	InstanceID string `json:"instance_id"`
	// TTLMillis is the lease duration in milliseconds; the instance
	// should renew well within it (the daemons renew at TTL/3).
	TTLMillis int64  `json:"ttl_ms"`
	Version   uint64 `json:"version"`
}

// Session requests a wire-transport session token for a peer that is
// neither a registered middlebox nor a DPI instance (a traffic source,
// a benchmark driver). Tokens are stable per peer ID, so lost-ack
// retries are safe.
type Session struct {
	PeerID string `json:"peer_id"`
}

// SessionAck carries the issued token back.
type SessionAck struct {
	PeerID    string `json:"peer_id"`
	WireToken uint64 `json:"wire_token"`
}

// MigrateFlows instructs an instance to hand the given flows to another
// instance; the source buffers the flows' packets until migration
// completes (Section 4.3).
type MigrateFlows struct {
	Flows     []FlowKey `json:"flows"`
	TargetID  string    `json:"target_id"`
	Dedicated bool      `json:"dedicated,omitempty"`
}

// Ack acknowledges the message with the given sequence number.
type Ack struct {
	AckSeq uint64 `json:"ack_seq"`
}

// Error reports a protocol-level failure.
type Error struct {
	AckSeq uint64 `json:"ack_seq"`
	Reason string `json:"reason"`
}

// MaxMessageLen bounds a framed message; registration of the largest
// real pattern set (ClamAV, ~5 MB raw per the paper) fits with room to
// spare.
const MaxMessageLen = 64 << 20

// Frame errors.
var (
	ErrMessageTooLarge = errors.New("ctlproto: message exceeds MaxMessageLen")
	ErrBadEnvelope     = errors.New("ctlproto: malformed envelope")
)

// WriteMsg frames and writes an envelope carrying body.
func WriteMsg(w io.Writer, typ MsgType, seq uint64, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("ctlproto: marshal %s: %w", typ, err)
	}
	env, err := json.Marshal(Envelope{Type: typ, Seq: seq, Body: raw})
	if err != nil {
		return fmt.Errorf("ctlproto: marshal envelope: %w", err)
	}
	if len(env) > MaxMessageLen {
		return ErrMessageTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(env)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(env); err != nil {
		return err
	}
	if m := wireMet.Load(); m != nil {
		m.msgsWritten.Inc()
		m.bytesWritten.Add(uint64(len(hdr) + len(env)))
		m.countMsg(typ)
	}
	return nil
}

// ReadMsg reads one framed envelope.
func ReadMsg(r io.Reader) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageLen {
		return nil, ErrMessageTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	var env Envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}
	if env.Type == "" {
		return nil, ErrBadEnvelope
	}
	if m := wireMet.Load(); m != nil {
		m.msgsRead.Inc()
		m.bytesRead.Add(uint64(len(hdr)) + uint64(n))
		m.countMsg(env.Type)
	}
	return &env, nil
}

// Decode unmarshals the envelope body into dst.
func (e *Envelope) Decode(dst any) error {
	if err := json.Unmarshal(e.Body, dst); err != nil {
		return fmt.Errorf("%w: body of %s: %v", ErrBadEnvelope, e.Type, err)
	}
	return nil
}
