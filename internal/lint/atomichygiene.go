package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The atomichygiene check keeps sync/atomic fields sound: an atomic
// value accessed around its methods (plain read, plain write, or a
// struct copy that silently duplicates it) defeats the whole point of
// making telemetry lock-free. Three rules:
//
//  1. an atomic-typed field may only appear as the receiver of one of
//     its methods or under & (to pass a pointer onward);
//  2. a struct that (transitively) contains atomic fields must not be
//     copied — assignments, arguments, returns, and range values of
//     such types are flagged (composite literals are construction, not
//     copies, and stay legal);
//  3. function parameters, results, and receivers of such struct types
//     must be pointers.

// isAtomicType reports whether t is a named type from sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// atomicCarrier memoizes which struct types transitively contain an
// atomic field.
type atomicCarrier struct {
	memo map[types.Type]bool
}

func (c *atomicCarrier) contains(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := c.memo[t]; ok {
		return v
	}
	c.memo[t] = false // break recursive types
	result := false
	switch u := t.(type) {
	case *types.Named:
		result = isAtomicType(u) || c.contains(u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			ft := u.Field(i).Type()
			if isAtomicType(ft) || c.contains(ft) {
				result = true
				break
			}
		}
	case *types.Array:
		result = c.contains(u.Elem())
	}
	c.memo[t] = result
	return result
}

func checkAtomicHygiene(m *Module) []Diagnostic {
	carrier := &atomicCarrier{memo: make(map[types.Type]bool)}
	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			diags = append(diags, checkAtomicFile(m, pkg, file, carrier)...)
		}
	}
	return diags
}

func checkAtomicFile(m *Module, pkg *Package, file *ast.File, carrier *atomicCarrier) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{Pos: m.Fset.Position(n.Pos()), Check: "atomichygiene", Msg: msg})
	}

	// typeName renders the copied type briefly.
	typeName := func(t types.Type) string {
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name()
		}
		return t.String()
	}

	// flagCopy reports expr when evaluating it copies an atomic-bearing
	// struct by value. Composite literals construct rather than copy.
	flagCopy := func(expr ast.Expr, what string) {
		expr = ast.Unparen(expr)
		if _, isLit := expr.(*ast.CompositeLit); isLit {
			return
		}
		if sel, isSel := expr.(*ast.SelectorExpr); isSel {
			// Reading an atomic field directly is already rule 1's
			// diagnostic; don't stack a copy report on the same expression.
			if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal && isAtomicType(s.Type()) {
				return
			}
		}
		t := pkg.Info.TypeOf(expr)
		if t == nil {
			return
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			return
		}
		if carrier.contains(t) {
			report(expr, what+" copies "+typeName(t)+", which contains atomic fields; pass a pointer")
		}
	}

	// checkSignature flags by-value atomic-bearing parameters, results
	// and receivers.
	checkSignature := func(ft *ast.FuncType, recv *ast.FieldList) {
		fields := []*ast.FieldList{ft.Params, ft.Results, recv}
		for _, fl := range fields {
			if fl == nil {
				continue
			}
			for _, f := range fl.List {
				t := pkg.Info.TypeOf(f.Type)
				if t == nil {
					continue
				}
				if _, isPtr := t.(*types.Pointer); isPtr {
					continue
				}
				if carrier.contains(t) {
					report(f.Type, "by-value "+typeName(t)+" in signature; a struct containing atomic fields must be passed by pointer")
				}
			}
		}
	}

	// The walk keeps a parent stack so an atomic selector can be
	// recognized as the receiver of its own method call or as the
	// operand of &.
	var stack []ast.Node
	parent := func() ast.Node {
		if len(stack) < 2 {
			return nil
		}
		return stack[len(stack)-2]
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch node := n.(type) {
		case *ast.FuncDecl:
			checkSignature(node.Type, node.Recv)
		case *ast.FuncLit:
			checkSignature(node.Type, nil)
		case *ast.AssignStmt:
			for _, rhs := range node.Rhs {
				flagCopy(rhs, "assignment")
			}
		case *ast.ValueSpec:
			for _, v := range node.Values {
				flagCopy(v, "assignment")
			}
		case *ast.CallExpr:
			for _, arg := range node.Args {
				flagCopy(arg, "argument")
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				flagCopy(res, "return")
			}
		case *ast.RangeStmt:
			if node.Value != nil {
				if t := pkg.Info.TypeOf(node.Value); t != nil && carrier.contains(t) {
					report(node.Value, "range value copies "+typeName(t)+", which contains atomic fields; range over indices or pointers")
				}
			}
		case *ast.SelectorExpr:
			sel, ok := pkg.Info.Selections[node]
			if !ok || sel.Kind() != types.FieldVal || !isAtomicType(sel.Type()) {
				return true
			}
			switch p := parent().(type) {
			case *ast.SelectorExpr:
				// x.ctr.Load(): fine — selecting a method off the field.
				if psel, ok := pkg.Info.Selections[p]; ok && psel.Kind() == types.MethodVal {
					return true
				}
			case *ast.UnaryExpr:
				if p.Op == token.AND {
					return true
				}
			}
			report(node, "atomic field "+sel.Obj().Name()+" used without its methods (Load/Store/Add/...)")
		}
		return true
	})
	return diags
}
