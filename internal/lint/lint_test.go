package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// Fixtures under testdata/src declare their expected diagnostics inline:
// a comment containing `want "regex"` on some line expects exactly one
// diagnostic on that line whose message matches the regex. A fixture
// with no want comments (testdata/src/clean) must produce none.

var wantRe = regexp.MustCompile(`want "([^"]*)"`)

type want struct {
	line    int
	pattern *regexp.Regexp
	matched bool
}

// collectWants scans every comment of the loaded fixture for want
// expectations, keyed by base filename.
func collectWants(t *testing.T, m *Module) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					pos := m.Fset.Position(c.Pos())
					name := filepath.Base(pos.Filename)
					for _, sub := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(sub[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", name, pos.Line, sub[1], err)
						}
						wants[name] = append(wants[name], &want{line: pos.Line, pattern: re})
					}
				}
			}
		}
	}
	return wants
}

func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if e.Name() == "escape" {
			continue // its wants come from CheckEscape: see TestEscapeFixture
		}
		t.Run(e.Name(), func(t *testing.T) {
			m, err := LoadDir(filepath.Join("testdata", "src", e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(t, m)
			for _, d := range Run(m) {
				name := filepath.Base(d.Pos.Filename)
				found := false
				for _, w := range wants[name] {
					if !w.matched && w.line == d.Pos.Line && w.pattern.MatchString(d.Msg) {
						w.matched = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for name, ws := range wants {
				for _, w := range ws {
					if !w.matched {
						t.Errorf("%s:%d: no diagnostic matching %q", name, w.line, w.pattern)
					}
				}
			}
		})
	}
}

// TestEscapeFixture drives CheckEscape over its golden fixture. The
// fixture lives under testdata like the others but must be loaded as a
// real module package (CheckEscape shells out to `go build`, which
// needs an import path, not a bare directory).
func TestEscapeFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the fixture package")
	}
	m, err := LoadModule(filepath.Join("..", ".."), "./internal/lint/testdata/src/escape")
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, m)
	diags, err := CheckEscape(m, Annotate(m))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		name := filepath.Base(d.Pos.Filename)
		found := false
		for _, w := range wants[name] {
			if !w.matched && w.line == d.Pos.Line && w.pattern.MatchString(d.Msg) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for name, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", name, w.line, w.pattern)
			}
		}
	}
}

// TestModuleEscape runs the allocation proof over the repository: no
// //dpi:hotpath-reachable function may heap-allocate without a waiver.
// Gated behind DPILINT_ESCAPE because the compiler's verdicts (and
// inlining decisions that shift their positions) vary across toolchain
// versions; the CI escape job is the canonical runner.
func TestModuleEscape(t *testing.T) {
	if os.Getenv("DPILINT_ESCAPE") == "" {
		t.Skip("set DPILINT_ESCAPE=1 (escape verdicts are toolchain-dependent; CI runs this in its own job)")
	}
	if testing.Short() {
		t.Skip("recompiles hotpath packages with -gcflags=-m")
	}
	m, err := LoadModule(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := CheckEscape(m, Annotate(m))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("module not allocation-clean: %s", d)
	}
}

// TestModule runs dpilint over the repository itself: the tree must be
// clean, and the annotations the checks hang off must actually be
// present on the per-packet hot path.
func TestModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	m, err := LoadModule(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(m) {
		t.Errorf("module not clean: %s", d)
	}

	ann := collectAnnotations(m)
	hot := make(map[string]bool)
	for fn, fa := range ann.funcs {
		if fa.hotpath {
			hot[funcName(fn)] = true
		}
	}
	for _, name := range []string{
		"core.Engine.Inspect",
		"core.Engine.inspect",
		"core.flowShard.flow",
		"core.flowShard.evictFlow",
		"core.scratch.emit",
		"mpm.ACFull.Scan",
		"mpm.ACCompact.Scan",
		"mpm.ACBitmap.Scan",
	} {
		if !hot[name] {
			t.Errorf("expected //dpi:hotpath on %s", name)
		}
	}

	// The control-plane RPC surface carries //dpi:ctx — the failover
	// machinery relies on every blocking call being abortable.
	ctxed := make(map[string]bool)
	for fn, fa := range ann.funcs {
		if fa.ctx {
			ctxed[funcName(fn)] = true
		}
	}
	for _, name := range []string{
		"controller.Client.Register",
		"controller.Client.Deregister",
		"controller.Client.AddPatterns",
		"controller.Client.RemovePatterns",
		"controller.Client.ReportChains",
		"controller.Client.InstanceHello",
		"controller.Client.SendTelemetry",
		"controller.Client.RenewLease",
		"ctlproto.WriteMsgCtx",
		"ctlproto.ReadMsgCtx",
		"ctlproto.WriteDataPacketCtx",
		"ctlproto.ReadDataPacketCtx",
		"ctlproto.WriteResultFrameCtx",
		"ctlproto.ReadResultFrameCtx",
	} {
		if !ctxed[name] {
			t.Errorf("expected //dpi:ctx on %s", name)
		}
	}

	// The declared lock hierarchy mirrors the acquisition edges that
	// actually exist across packages; losing a declaration silently
	// un-pins that ordering.
	rules := make(map[string]bool)
	for _, r := range ann.lockorder {
		rules[r.before+" < "+r.after] = true
	}
	for _, rule := range []string{
		"middlebox.DPINode.mu < reassembly.Assembler.mu",
		"middlebox.DPINode.mu < core.flowShard.mu",
		"middlebox.DPINode.mu < netsim.Host.mu",
		"middlebox.DPINode.mu < obs.Registry.mu",
		"core.flowShard.mu < core.flowState.mu",
		"netsim.Network.mu < netsim.Host.mu",
		"netsim.Network.mu < openflow.Switch.mu",
		"sdn.TSA.mu < openflow.Switch.mu",
	} {
		if !rules[rule] {
			t.Errorf("expected //dpi:lockorder(%s) declaration", rule)
		}
	}
}
