package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// The static call graph is shared infrastructure: hotpath reachability,
// the lock-order analysis and the escape proof all need "which module
// functions can this body call", with calls through module interfaces
// (e.g. mpm.Automaton.Scan) fanned out to every module implementation.
// Calls through plain func values stay invisible — the checks that care
// (hotpath) require their roots to be annotated directly.

// declOf locates the AST and package of a module function.
type declOf struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// callGraph indexes every module function declaration and resolves
// call expressions, including interface dispatch, to module callees.
type callGraph struct {
	m     *Module
	idx   map[*types.Func]declOf
	named []*types.Named
}

func newCallGraph(m *Module) *callGraph {
	cg := &callGraph{m: m, idx: make(map[*types.Func]declOf)}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						cg.idx[fn] = declOf{decl: fd, pkg: pkg}
					}
				}
			}
		}
	}
	// Every named (non-interface) type declared in the module, for
	// interface-dispatch expansion.
	for _, pkg := range m.Pkgs {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			cg.named = append(cg.named, named)
		}
	}
	return cg
}

// moduleInterfaceMethod reports whether fn is a method of an interface
// type declared inside the module.
func (cg *callGraph) moduleInterfaceMethod(fn *types.Func) (*types.Interface, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil, false
	}
	if fn.Pkg() == nil {
		return nil, false
	}
	for _, pkg := range cg.m.Pkgs {
		if pkg.Pkg == fn.Pkg() {
			return iface, true
		}
	}
	return nil, false
}

// implementersOf resolves an interface method to the corresponding
// concrete methods of every module type satisfying the interface.
func (cg *callGraph) implementersOf(iface *types.Interface, name string) []*types.Func {
	var out []*types.Func
	for _, named := range cg.named {
		ptr := types.NewPointer(named)
		if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), name)
		if fn, ok := obj.(*types.Func); ok {
			if _, inModule := cg.idx[fn]; inModule {
				out = append(out, fn)
			}
		}
	}
	return out
}

// resolve maps one call expression to the module functions it can
// reach: the static callee when it is declared in the module, or every
// module implementation when the callee is a module interface method.
func (cg *callGraph) resolve(info *types.Info, call *ast.CallExpr) []*types.Func {
	fn := calleeOf(info, call)
	if fn == nil {
		return nil
	}
	if iface, ok := cg.moduleInterfaceMethod(fn); ok {
		return cg.implementersOf(iface, fn.Name())
	}
	if _, inModule := cg.idx[fn]; inModule {
		return []*types.Func{fn}
	}
	return nil
}

// callees returns the module functions a body can call directly.
func (cg *callGraph) callees(d declOf) []*types.Func {
	var out []*types.Func
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			out = append(out, cg.resolve(d.pkg.Info, call)...)
		}
		return true
	})
	return out
}

// provenance records how the reachability BFS arrived at a function, so
// diagnostics can name the responsible entry point.
type provenance struct {
	root *types.Func
	via  *types.Func // immediate caller, nil at a root
}

// reachableFrom runs a BFS over the call graph from the annotated
// hotpath roots (sorted for determinism) and returns every module
// function transitively reachable, with provenance.
func (cg *callGraph) reachableFrom(roots []*types.Func) map[*types.Func]provenance {
	sort.Slice(roots, func(i, j int) bool { return funcName(roots[i]) < funcName(roots[j]) })
	reached := make(map[*types.Func]provenance)
	var queue []*types.Func
	for _, fn := range roots {
		if _, ok := cg.idx[fn]; !ok {
			continue // annotated declaration without a body in this load
		}
		if _, seen := reached[fn]; seen {
			continue
		}
		reached[fn] = provenance{root: fn}
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		d := cg.idx[fn]
		if d.decl.Body == nil {
			continue
		}
		for _, callee := range cg.callees(d) {
			if _, seen := reached[callee]; seen {
				continue
			}
			reached[callee] = provenance{root: reached[fn].root, via: fn}
			queue = append(queue, callee)
		}
	}
	return reached
}

// hotpathRoots returns every function annotated //dpi:hotpath.
func hotpathRoots(ann *Annotations) []*types.Func {
	var roots []*types.Func
	for fn, fa := range ann.funcs {
		if fa.hotpath {
			roots = append(roots, fn)
		}
	}
	return roots
}
