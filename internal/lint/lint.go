// Package lint is dpilint's analyzer framework: a small, stdlib-only
// static checker that makes the data plane's concurrency and hot-path
// invariants machine-checked instead of conventional. The paper's
// economics rest on one shared scan serving every middlebox (Section 3),
// so a single regression in the scan hot path — a stray allocation-heavy
// fmt call, a forgotten lock, a torn read of a telemetry counter — taxes
// every chain at once. Five checks guard against that:
//
//   - hotpath: functions annotated //dpi:hotpath, and everything
//     transitively reachable from them inside the module, must stay pure
//     in the per-packet sense — no fmt/reflect, no time.Now, no new
//     goroutines, no defer, and no mutex other than a shard/flow "mu".
//   - guardedby: struct fields annotated //dpi:guardedby(mu) may only be
//     touched lexically between mu.Lock() and mu.Unlock(), or inside
//     functions annotated //dpi:locked(mu) whose contract is that the
//     caller already holds the lock. TryLock/TryRLock successes and
//     RLock→Lock upgrades count as holding the lock.
//   - atomichygiene: sync/atomic-typed fields are only used through
//     their methods, and structs containing them travel by pointer —
//     a by-value copy silently forks the counter.
//   - apihygiene: library packages neither print (fmt.Print*, log.*)
//     nor wrap errors without %w.
//   - ctx: functions annotated //dpi:ctx — RPC-shaped control-plane
//     calls — take a context.Context as their first parameter, so every
//     blocking call is abortable when a peer hangs or dies.
//   - lockorder: a module-wide lock-acquisition graph — which locks are
//     taken while which others are held, traced through the static call
//     graph — must be acyclic, and must respect every declared
//     //dpi:lockorder(a < b) hierarchy edge.
//   - lifecycle: every `go` statement must be tied to a shutdown or
//     completion mechanism (ctx, WaitGroup, channel) or carry an
//     explicit //dpi:detached(reason) waiver, so background goroutines
//     cannot silently leak.
//
// A seventh analysis, the static allocation proof for //dpi:hotpath
// code, needs the compiler's escape analysis and runs as a separate
// mode (CheckEscape, cmd/dpilint -escape).
//
// The framework deliberately avoids golang.org/x/tools: packages are
// enumerated and their compiled dependencies resolved with `go list
// -export`, module sources are type-checked with go/types, and the
// checks work on plain go/ast with go/types facts.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one type-checked module (or fixture) package.
type Package struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module is the unit of analysis: every package loaded for one run,
// sharing a FileSet and a type universe, listed in dependency order.
type Module struct {
	Fset *token.FileSet
	Pkgs []*Package
	Dir  string // directory the load ran in (go build cwd for -escape)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Msg)
}

// MarshalJSON flattens the position so `dpilint -json` output is stable
// and trivially consumed by CI tooling.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Column  int    `json:"column"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Msg})
}

// Run executes every check against the module and returns the combined
// findings sorted by position.
func Run(m *Module) []Diagnostic {
	ann := collectAnnotations(m)
	var diags []Diagnostic
	diags = append(diags, ann.diags...)
	diags = append(diags, checkHotpath(m, ann)...)
	diags = append(diags, checkGuardedBy(m, ann)...)
	diags = append(diags, checkAtomicHygiene(m)...)
	diags = append(diags, checkAPIHygiene(m)...)
	diags = append(diags, checkCtx(m, ann)...)
	diags = append(diags, checkLockOrder(m, ann)...)
	diags = append(diags, checkLifecycle(m, ann)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Msg < b.Msg
	})
	return diags
}

// funcName renders a *types.Func as pkg.Recv.Name for diagnostics.
func funcName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// calleeOf resolves a call expression to the called *types.Func, or nil
// when the callee is dynamic (a func value, a builtin, a conversion).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// pkgPathOf returns the import path of the package declaring fn, or "".
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// acquiresLock reports whether a sync method name acquires the lock
// (a TryLock that fails acquires nothing, but lexical analysis assumes
// the guarded branch runs under a successful acquisition).
func acquiresLock(method string) bool {
	switch method {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return true
	}
	return false
}

// isSyncLock reports whether call is m.Lock/RLock/TryLock/TryRLock/
// Unlock/RUnlock on a sync.Mutex, sync.RWMutex, or sync.Locker
// receiver, returning the terminal name of the mutex expression ("mu"
// in fs.mu.Lock()).
func isSyncLock(info *types.Info, call *ast.CallExpr) (mutexName, method string, ok bool) {
	fun, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch fun.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	sel, found := info.Selections[fun]
	if !found {
		return "", "", false
	}
	recv := sel.Recv()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex", "Locker":
	default:
		return "", "", false
	}
	switch x := ast.Unparen(fun.X).(type) {
	case *ast.Ident:
		mutexName = x.Name
	case *ast.SelectorExpr:
		mutexName = x.Sel.Name
	default:
		mutexName = strings.TrimSpace(types.ExprString(fun.X))
	}
	return mutexName, fun.Sel.Name, true
}
