// Package atomichygiene exercises atomic-field hygiene: atomics only
// through their methods, atomic-bearing structs only by pointer.
package atomichygiene

import "sync/atomic"

type stats struct {
	packets atomic.Uint64
	bytes   atomic.Uint64
}

type engine struct {
	counter stats
}

func (e *engine) good() uint64 {
	e.counter.packets.Add(1)
	return e.counter.bytes.Load()
}

func (e *engine) borrow() *atomic.Uint64 { return &e.counter.packets }

func (e *engine) torn() uint64 {
	v := e.counter.packets // want "atomic field packets used without its methods"
	return v.Load()
}

func (e *engine) overwrite() {
	e.counter.packets = atomic.Uint64{} // want "atomic field packets used without its methods"
}

func consume(s stats) uint64 { // want "by-value stats in signature"
	return s.packets.Load()
}

func (s stats) total() uint64 { // want "by-value stats in signature"
	return s.packets.Load()
}

func copyOut(e *engine) uint64 {
	snap := e.counter // want "assignment copies stats"
	return snap.bytes.Load()
}

func relay(e *engine) uint64 {
	return consume(e.counter) // want "argument copies stats"
}

func (e *engine) expose() stats { // want "by-value stats in signature"
	return e.counter // want "return copies stats"
}

func sum(list []*stats) uint64 {
	var t uint64
	for _, s := range list {
		t += s.packets.Load()
	}
	return t
}

func sumByValue(list []stats) uint64 {
	var t uint64
	for _, s := range list { // want "range value copies stats"
		t += s.packets.Load()
	}
	return t
}
