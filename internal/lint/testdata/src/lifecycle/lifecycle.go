// Package lifecycle exercises the goroutine lifecycle check: every go
// statement must be tied to a shutdown mechanism (channel operation,
// WaitGroup.Done, or a context in its body), or carry an explicit
// //dpi:detached waiver. Stale waivers are themselves findings.
package lifecycle

import (
	"context"
	"sync"
)

func work() {}

// leak launches a goroutine nothing can stop or join.
func leak() {
	go work() // want "no shutdown mechanism"
}

// waived is the same launch with a declared reason; the waiver on the
// line above covers it.
func waived() {
	//dpi:detached(fixture: fire-and-forget by design)
	go work()
}

// wgTied joins through a WaitGroup.
func wgTied(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// quitTied stops on a quit channel receive.
func quitTied(quit chan struct{}) {
	go func() {
		<-quit
	}()
}

// rangeTied drains a channel: closing jobs terminates it.
func rangeTied(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}

// sendTied blocks on a channel send, so the receiver paces and
// ultimately releases it.
func sendTied(done chan struct{}) {
	go func() {
		work()
		done <- struct{}{}
	}()
}

// named launches a module function whose body is inspected one level
// deep: run's ctx.Done receive ties it.
func named(ctx context.Context) {
	go run(ctx)
}

func run(ctx context.Context) {
	<-ctx.Done()
}

// ctxArg passes a context to a callee whose body shows no tie at all:
// the context argument alone proves cancellability.
func ctxArg(ctx context.Context) {
	go poll(ctx)
}

func poll(context.Context) {}

// stale waivers rot silently unless reported: this one covers no go
// statement.
func stale() {
	//dpi:detached(fixture: nothing launched here) // want "covers no go statement"
	work()
}
