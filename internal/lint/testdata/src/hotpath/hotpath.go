// Package hotpath exercises the dpilint hotpath check: each banned
// construct fires once, purity is enforced transitively through
// unannotated callees, and interface dispatch fans out to every module
// implementation.
package hotpath

import (
	"fmt"
	"reflect"
	"sync"
	"time"
)

type shard struct {
	mu    sync.Mutex
	other sync.Mutex
	n     int
}

//dpi:hotpath
func (s *shard) scan(data []byte) int {
	s.mu.Lock() // the shard's own mu is the one permitted lock
	s.n++
	s.mu.Unlock()
	defer trace()                    // want "uses defer"
	go trace()                       // want "starts a goroutine" want "no shutdown mechanism"
	_ = fmt.Sprintf("%d", len(data)) // want "calls fmt.Sprintf"
	_ = reflect.TypeOf(data)         // want "calls reflect.TypeOf"
	_ = time.Now()                   // want "calls time.Now"
	s.other.Lock()                   // want "acquires mutex other"
	s.other.Unlock()
	return helper(data)
}

func trace() {}

// helper is not annotated: it inherits hotness by reachability.
func helper(data []byte) int {
	_ = time.Now() // want "calls time.Now"
	return len(data)
}

// matcher mimics mpm.Automaton: a call through a module interface
// reaches every implementation.
type matcher interface{ match([]byte) bool }

type slow struct{}

func (slow) match(b []byte) bool {
	_ = time.Now() // want "calls time.Now"
	return len(b) > 0
}

type never struct{}

func (never) match([]byte) bool { return false }

//dpi:hotpath
func dispatch(m matcher, b []byte) bool { return m.match(b) }

// cold is unreachable from any hot path: the same constructs are legal.
func cold() {
	defer trace()
	_ = fmt.Sprintf("%v", time.Now())
}

var _ = []matcher{slow{}, never{}}
var _ = cold
