// Package annotations exercises directive validation: wrong placement
// and malformed spellings are themselves diagnostics, so a typo cannot
// silently disable a check.
package annotations

import "sync"

type s struct {
	mu sync.Mutex
	//dpi:hotpath want "annotates functions, not fields"
	n int
	//dpi:guardedby want "malformed directive"
	m int
	//dpi:guardedby(mu)
	ok int
}

//dpi:guardedby(mu) want "annotates struct fields, not functions"
func f() {}

//dpi:nonsense want "malformed directive"
func g() {}

//dpi:locked want "malformed directive"
func h() {}

func misplaced() {
	//dpi:hotpath want "must be in a function or struct-field doc comment"
	_ = 0
}

//dpi:locked(mu)
func (v *s) lockedOK() int { return v.ok }

var _ = f
var _ = g
var _ = h
var _ = misplaced
