// Package apihygiene exercises the library-surface checks: no global
// prints, errors wrapped with %w.
package apihygiene

import (
	"errors"
	"fmt"
	"log"
)

var errBase = errors.New("base")

func report() {
	fmt.Println("hello")    // want "writes to stdout from a library package"
	log.Printf("x = %d", 1) // want "used in a library package"
}

// Referencing (not calling) a banned function is caught too — this is
// how a default like `Logf: log.Printf` sneaks prints into a library.
var sink = log.Println // want "used in a library package"

func wrapBad(err error) error {
	return fmt.Errorf("ctx: %v", err) // want "formats an error without %w"
}

func wrapGood(err error) error {
	return fmt.Errorf("ctx: %w", err)
}

func formatted(n int) error {
	if n < 0 {
		return fmt.Errorf("n = %d out of range (base %w)", n, errBase)
	}
	return nil
}

// Sprintf and Fprintf-to-an-injected-writer remain legal.
func describe(n int) string { return fmt.Sprintf("%d", n) }
