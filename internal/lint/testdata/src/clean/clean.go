// Package clean uses every annotation correctly and must produce zero
// diagnostics — the fixture that keeps dpilint's false-positive rate at
// the floor.
package clean

import (
	"strconv"
	"sync"
	"sync/atomic"
)

type counters struct {
	hits atomic.Uint64
}

type cache struct {
	mu sync.Mutex
	//dpi:guardedby(mu)
	entries map[string]string
	stats   counters
}

// lookup is per-packet code: it takes only its own mu, briefly, and
// bumps telemetry atomically.
//
//dpi:hotpath
func (c *cache) lookup(k string) (string, bool) {
	c.mu.Lock()
	v, ok := c.entries[k]
	c.mu.Unlock()
	c.stats.hits.Add(1)
	return v, ok
}

// lockedLen documents that its caller holds mu.
//
//dpi:locked(mu)
func (c *cache) lockedLen() int { return len(c.entries) }

// size takes the lock itself and may call locked helpers.
func (c *cache) size() int {
	c.mu.Lock()
	n := c.lockedLen()
	c.mu.Unlock()
	return n
}

// deferred unlocking keeps the lock held to the end of the function.
func (c *cache) get(k string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[k]
}

func (c *cache) describe() string {
	return strconv.Itoa(int(c.stats.hits.Load()))
}

// borrow hands out a pointer to the atomic — legal, no copy.
func (c *cache) borrow() *atomic.Uint64 { return &c.stats.hits }
