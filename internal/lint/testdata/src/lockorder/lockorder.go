// Package lockorder exercises the module-wide lock-acquisition graph:
// nested acquisitions build edges (directly and through calls), cycles
// and declared-order violations fire, same-type nesting is a self-edge,
// and a `go` statement cuts the held set.
package lockorder

import "sync"

//dpi:lockorder(lockorder.A.mu < lockorder.B.mu)

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

// good respects the declared order — but because bad() below also
// acquires the reverse order, the A↔B cycle is reported here, at the
// first edge of the cycle.
func good(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

// bad acquires against the declared hierarchy.
func bad(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want "violates declared lock order"
	a.mu.Unlock()
	b.mu.Unlock()
}

// lockCThenD reaches D's lock through a call while holding C's: the
// deferred unlock holds C to the end, so the call edge C → D forms
// here. Together with lockDThenC it closes a cycle with no declared
// hierarchy at all.
func lockCThenD(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	grabD(d) // want "lock-order cycle"
}

func grabD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func lockDThenC(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.Unlock()
}

// Self-edge: two instances of one lock type nested — needs an instance
// order the graph cannot see, so it is flagged.
type node struct {
	mu   sync.Mutex
	peer *node
}

func link(n *node) {
	n.mu.Lock()
	n.peer.mu.Lock() // want "while another lockorder.node.mu is held"
	n.peer.mu.Unlock()
	n.mu.Unlock()
}

// spawn launches a goroutine while holding B's lock; the goroutine
// acquires A's. No B → A edge forms — the goroutine starts lock-free —
// so the declared order is not violated.
func spawn(a *A, b *B, quit chan struct{}) {
	b.mu.Lock()
	go func() {
		<-quit
		a.mu.Lock()
		a.mu.Unlock()
	}()
	b.mu.Unlock()
}

// sequential acquisitions never overlap: unlocking before the next
// lock keeps the held set empty, so no edges and no findings.
func sequential(c *C, d *D) {
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}
