// Package ctxcheck exercises the dpilint ctx check: annotated
// RPC-shaped functions must take context.Context first; unannotated
// functions are left alone.
package ctxcheck

import "context"

type client struct{}

// Register is RPC-shaped and correctly context-first.
//
//dpi:ctx
func (c *client) Register(ctx context.Context, id string) error {
	_ = ctx
	_ = id
	return nil
}

// RenewLease forgot its context parameter entirely.
//
//dpi:ctx
func (c *client) RenewLease(id string) error { // want "must take a context.Context as its first parameter"
	_ = id
	return nil
}

// Deregister takes a context, but not first.
//
//dpi:ctx
func (c *client) Deregister(id string, ctx context.Context) error { // want "must take a context.Context as its first parameter"
	_ = ctx
	_ = id
	return nil
}

//dpi:ctx
func dialControl(ctx context.Context, addr string) error {
	_ = ctx
	_ = addr
	return nil
}

// localHelper is not annotated; no context required.
func localHelper(id string) string { return id }

//dpi:ctx(arg) // want "malformed directive"
func badDirective(ctx context.Context) { _ = ctx }

var _ = dialControl
var _ = localHelper
