// Package escape exercises the -escape static allocation proof: the
// compiler's own escape analysis is the oracle, and any heap allocation
// in a function reachable from a //dpi:hotpath root is a finding unless
// a //dpi:coldalloc waiver accounts for it.
package escape

var sink []byte

// Leaky returns a fresh buffer, so the make cannot stay on the stack.
//
//dpi:hotpath
func Leaky(p []byte) []byte {
	buf := make([]byte, len(p)) // want "heap-allocates"
	copy(buf, p)
	return buf
}

// Clean touches only its argument and the stack.
//
//dpi:hotpath
func Clean(p []byte) int {
	n := 0
	for _, b := range p {
		if b == 0 {
			n++
		}
	}
	return n
}

// Amortized allocates on a declared cold branch: the waiver on the line
// above the make absorbs the verdict.
//
//dpi:hotpath
func Amortized() {
	if sink == nil {
		//dpi:coldalloc(fixture: one-time setup, reused afterwards)
		sink = make([]byte, 4096)
	}
}

// escapesViaCallee heap-allocates in an unannotated helper that is
// reachable from a hot root, which is just as much a finding.
//
//dpi:hotpath
func EscapesViaCallee(p []byte) []byte {
	return duplicate(p)
}

//go:noinline
func duplicate(p []byte) []byte {
	out := make([]byte, len(p)) // want "heap-allocates"
	copy(out, p)
	return out
}
