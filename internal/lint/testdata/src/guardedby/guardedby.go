// Package guardedby exercises lexical lock discipline: accesses inside
// a Lock/Unlock extent or in //dpi:locked functions pass; everything
// else fires.
package guardedby

import "sync"

type table struct {
	mu sync.Mutex
	//dpi:guardedby(mu)
	entries map[string]int
	//dpi:guardedby(mu)
	seq int
}

func (t *table) good(k string) int {
	t.mu.Lock()
	v := t.entries[k]
	t.seq++
	t.mu.Unlock()
	return v
}

func (t *table) deferred(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.entries[k] // deferred unlock holds mu to the end
}

//dpi:locked(mu)
func (t *table) lockedGet(k string) int { return t.entries[k] }

func (t *table) bad(k string) int {
	return t.entries[k] // want "field entries is guarded by mu, which is not held here"
}

func (t *table) afterUnlock(k string) int {
	t.mu.Lock()
	v := t.entries[k]
	t.mu.Unlock()
	t.seq++ // want "field seq is guarded by mu, which is not held here"
	return v
}

// TryLock counts as an acquisition: code inside the success branch is
// written assuming the lock is held.
func (t *table) try(k string) (int, bool) {
	if !t.mu.TryLock() {
		return 0, false
	}
	v := t.entries[k]
	t.mu.Unlock()
	return v, true
}

// rwtable exercises the RLock→Lock upgrade idiom on an RWMutex.
type rwtable struct {
	mu sync.RWMutex
	//dpi:guardedby(mu)
	entries map[string]int
}

func (t *rwtable) upgrade(k string) {
	t.mu.RLock()
	v := t.entries[k] // read under the read lock
	t.mu.RUnlock()
	t.mu.Lock()
	t.entries[k] = v + 1 // write under the upgraded write lock
	t.mu.Unlock()
}

func (t *rwtable) readUnlocked(k string) int {
	return t.entries[k] // want "field entries is guarded by mu, which is not held here"
}

// sibling guarded by another struct's mu: name-based matching accepts
// any lexically held lock called mu, as core's shard/flow split needs.
type entry struct {
	//dpi:guardedby(mu)
	lastUsed uint64
}

func (t *table) touch(e *entry, now uint64) {
	t.mu.Lock()
	e.lastUsed = now
	t.mu.Unlock()
}

func (t *table) touchUnlocked(e *entry, now uint64) {
	e.lastUsed = now // want "field lastUsed is guarded by mu, which is not held here"
}
