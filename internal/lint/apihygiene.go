package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// The apihygiene check keeps the library's surface quiet and its errors
// inspectable:
//
//   - no package except a main (cmd/, examples/) may reference
//     fmt.Print* or the log package's printing/exiting functions —
//     libraries report through returned errors or injected callbacks
//     (constructing a *log.Logger someone handed you is fine; writing
//     to the process-global one is not);
//   - fmt.Errorf calls that carry an error argument must wrap it with
//     %w, so errors.Is/As keep working across package boundaries.

// bannedLogFuncs are the package-level log functions that write to the
// global logger or kill the process.
var bannedLogFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
	"Output": true,
}

// bannedFmtFuncs are the fmt functions that write to stdout.
var bannedFmtFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

func checkAPIHygiene(m *Module) []Diagnostic {
	var diags []Diagnostic
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, pkg := range m.Pkgs {
		isMain := pkg.Pkg.Name() == "main"
		// References (not just calls) are checked, so a default like
		// `Logf: log.Printf` cannot smuggle a global-logger write past
		// the rule.
		if !isMain {
			for ident, obj := range pkg.Info.Uses {
				fn, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				switch path := pkgPathOf(fn); {
				case path == "fmt" && bannedFmtFuncs[fn.Name()]:
					diags = append(diags, Diagnostic{
						Pos: m.Fset.Position(ident.Pos()), Check: "apihygiene",
						Msg: "fmt." + fn.Name() + " writes to stdout from a library package; return an error or take an injected sink",
					})
				case path == "log" && bannedLogFuncs[fn.Name()]:
					diags = append(diags, Diagnostic{
						Pos: m.Fset.Position(ident.Pos()), Check: "apihygiene",
						Msg: "log." + fn.Name() + " used in a library package; inject a logging callback instead",
					})
				}
			}
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pkg.Info, call)
				if fn == nil || pkgPathOf(fn) != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
					return true
				}
				lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
				if !ok {
					return true
				}
				format, err := strconv.Unquote(lit.Value)
				if err != nil || strings.Contains(format, "%w") {
					return true
				}
				for _, arg := range call.Args[1:] {
					t := pkg.Info.TypeOf(arg)
					if t == nil || t == types.Typ[types.UntypedNil] {
						continue
					}
					if types.Implements(t, errIface) {
						diags = append(diags, Diagnostic{
							Pos: m.Fset.Position(arg.Pos()), Check: "apihygiene",
							Msg: "fmt.Errorf formats an error without %w; wrap it so errors.Is/As see the cause",
						})
					}
				}
				return true
			})
		}
	}
	return diags
}
