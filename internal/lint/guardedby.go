package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The guardedby check enforces lock discipline lexically, the way a
// reviewer reads the code: an access to a field annotated
// //dpi:guardedby(mu) is legal when an earlier statement of the same
// function locked a mutex whose terminal name is "mu" and no unlock has
// intervened, or when the enclosing function is annotated
// //dpi:locked(mu), meaning its contract obliges the caller to hold the
// lock. A deferred unlock keeps the lock held through the end of the
// function, so it never closes the lexical critical section.
//
// Matching locks by name rather than by object identity is deliberate:
// it keeps the rule explainable at a glance, and it lets a field of one
// struct (flowState.lastUsed) be guarded by the lock of another (the
// owning shard's mu) without an ownership calculus. The race detector
// remains the backstop for what a lexical rule cannot see.
//
// Two common acquisition shapes are recognized rather than flagged:
// mu.TryLock()/mu.TryRLock() count as acquisitions (the code guarded by
// a TryLock is written assuming success — the failure branch returns
// before touching guarded state), and the RLock→Lock upgrade idiom
// (RLock, read, RUnlock, Lock, write, Unlock) naturally satisfies the
// event ledger because read and write acquisitions of one name share a
// held-count.

// lockEvent is one Lock/Unlock call, ordered by position.
type lockEvent struct {
	pos    token.Pos
	name   string
	locked bool // true for Lock/RLock
}

func checkGuardedBy(m *Module, ann *Annotations) []Diagnostic {
	if len(ann.guarded) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				diags = append(diags, checkFuncLocks(m, pkg, fd, fn, ann)...)
			}
		}
	}
	return diags
}

type guardedAccess struct {
	pos   token.Pos
	field *types.Var
	lock  string
}

func checkFuncLocks(m *Module, pkg *Package, fd *ast.FuncDecl, fn *types.Func, ann *Annotations) []Diagnostic {
	var events []lockEvent
	var accesses []guardedAccess
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.DeferStmt:
			deferred[node.Call] = true
		case *ast.CallExpr:
			if name, method, ok := isSyncLock(pkg.Info, node); ok {
				locked := acquiresLock(method)
				if !locked && deferred[node] {
					// Deferred unlock: the lock is held until return,
					// which a lexical scan models as "never released".
					return true
				}
				events = append(events, lockEvent{pos: node.Pos(), name: name, locked: locked})
			}
		case *ast.SelectorExpr:
			sel, ok := pkg.Info.Selections[node]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			field, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			if lock, guarded := ann.guarded[field]; guarded {
				accesses = append(accesses, guardedAccess{pos: node.Sel.Pos(), field: field, lock: lock})
			}
		}
		return true
	})
	if len(accesses) == 0 {
		return nil
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	var diags []Diagnostic
	for _, acc := range accesses {
		if fn != nil && ann.isLocked(fn, acc.lock) {
			continue
		}
		held := 0
		for _, ev := range events {
			if ev.pos >= acc.pos || ev.name != acc.lock {
				continue
			}
			if ev.locked {
				held++
			} else if held > 0 {
				held--
			}
		}
		if held == 0 {
			diags = append(diags, Diagnostic{
				Pos:   m.Fset.Position(acc.pos),
				Check: "guardedby",
				Msg: "field " + acc.field.Name() + " is guarded by " + acc.lock +
					", which is not held here (lock it, or annotate the function //dpi:locked(" + acc.lock + "))",
			})
		}
	}
	return diags
}
