package lint

import (
	"go/types"
	"sort"
)

// The ctx check enforces cancellation plumbing on the control plane:
// a function annotated //dpi:ctx is RPC-shaped — it crosses a network
// boundary or blocks on I/O — and must accept a context.Context as its
// first parameter (after the receiver), per the standard library's own
// convention. The failure-domain work leans on this: every blocking
// control-plane call must be abortable, or a hung controller turns a
// liveness problem into a stuck data-plane daemon.

// isContextContext reports whether t is context.Context.
func isContextContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func checkCtx(m *Module, ann *Annotations) []Diagnostic {
	fns := make([]*types.Func, 0)
	for fn, fa := range ann.funcs {
		if fa.ctx {
			fns = append(fns, fn)
		}
	}
	sort.Slice(fns, func(i, j int) bool { return funcName(fns[i]) < funcName(fns[j]) })

	var diags []Diagnostic
	for _, fn := range fns {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		params := sig.Params()
		if params.Len() >= 1 && isContextContext(params.At(0).Type()) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:   m.Fset.Position(fn.Pos()),
			Check: "ctx",
			Msg:   "//dpi:ctx function " + funcName(fn) + " must take a context.Context as its first parameter",
		})
	}
	return diags
}
