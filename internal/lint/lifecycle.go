package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The lifecycle check keeps background goroutines from leaking: the
// lease monitor, the janitor, worker pools and accept loops must all be
// stoppable, or a "restart" that rebuilds the world leaves the old
// world still ticking. Every `go` statement in non-test code (test
// files never reach the loader) must be tied to a shutdown or
// completion mechanism, observable in the goroutine's own body — the
// func literal launched, or the body of the named module function:
//
//   - a channel operation: receiving (<-done, select, range over a
//     work queue that close() drains) ties the goroutine to a quit or
//     work channel; sending or closing signals completion to a waiter;
//   - a (*sync.WaitGroup).Done call — the launcher's wg.Wait() joins it;
//   - a context.Context in scope — cancellation plumbing by
//     construction (the ctx check keeps the call tree honest about it).
//
// For `go f(x)` the named function's body is inspected one level deep
// (transitive traces would find an unrelated channel in some leaf and
// make the check vacuous). A goroutine that is deliberately
// unsupervised — fire-and-forget by design — carries an explicit
// waiver: //dpi:detached(reason) on the `go` line or the line above.
// A waiver that covers no go statement is itself reported, so stale
// waivers cannot accumulate.

func checkLifecycle(m *Module, ann *Annotations) []Diagnostic {
	cg := newCallGraph(m)
	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				pos := m.Fset.Position(gs.Pos())
				if waived(ann.detached, pos.Filename, pos.Line) {
					return true
				}
				if goStmtTied(cg, pkg, gs) {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:   pos,
					Check: "lifecycle",
					Msg: "goroutine has no shutdown mechanism (no channel op, WaitGroup.Done or context in its body); " +
						"tie it to one, or waive with //dpi:detached(reason) on this line or the line above",
				})
				return true
			})
		}
	}
	// Orphaned waivers: a //dpi:detached that matched no go statement
	// is stale (the goroutine moved or died) and must go.
	for _, w := range ann.detached {
		if !w.used {
			diags = append(diags, Diagnostic{
				Pos:   m.Fset.Position(w.pos),
				Check: "lifecycle",
				Msg:   "//dpi:detached waiver covers no go statement",
			})
		}
	}
	return diags
}

// waived reports whether a waiver comment from list sits on line (or
// the line above) in file, marking it used.
func waived(list []*lineWaiver, file string, line int) bool {
	for _, w := range list {
		if w.file == file && (w.line == line || w.line == line-1) {
			w.used = true
			return true
		}
	}
	return false
}

// goStmtTied reports whether the launched goroutine's body shows a
// shutdown or completion mechanism.
func goStmtTied(cg *callGraph, pkg *Package, gs *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return bodyTied(pkg, lit.Body)
	}
	// go f(...) — inspect the named module function's body, one level.
	for _, fn := range cg.resolve(pkg.Info, gs.Call) {
		d, ok := cg.idx[fn]
		if ok && d.decl.Body != nil && bodyTied(d.pkg, d.decl.Body) {
			return true
		}
	}
	// A goroutine handed a context is cancellable even when the body is
	// out of module reach (e.g. go srv.Serve with a ctx-carrying conn
	// is not a pattern here, but go run(ctx) is).
	for _, arg := range gs.Call.Args {
		if tv, ok := pkg.Info.Types[arg]; ok && isContextContext(tv.Type) {
			return true
		}
		// Bare identifiers are not reliably in Types; resolve through Uses.
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if obj, ok := pkg.Info.Uses[id].(*types.Var); ok && isContextContext(obj.Type()) {
				return true
			}
		}
	}
	return false
}

// bodyTied scans one body (nested literals included — a goroutine that
// wires its own children counts) for a lifecycle tie.
func bodyTied(pkg *Package, body ast.Node) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				tied = true // receive: quit channel or blocking join
			}
		case *ast.SendStmt:
			tied = true // completion signal to a waiting launcher
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					tied = true // work queue drained by close()
				}
			}
		case *ast.CallExpr:
			if isWaitGroupDone(pkg.Info, node) || isBuiltinClose(pkg.Info, node) {
				tied = true
			}
		case *ast.Ident:
			if obj, ok := pkg.Info.Uses[node].(*types.Var); ok && isContextContext(obj.Type()) {
				tied = true // ctx in scope: cancellation plumbing
			}
		}
		return !tied
	})
	return tied
}

// isWaitGroupDone reports whether call is (*sync.WaitGroup).Done.
func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}

// isBuiltinClose reports whether call is the close(ch) builtin.
func isBuiltinClose(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
