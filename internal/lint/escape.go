package lint

import (
	"bytes"
	"fmt"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The escape proof turns "allocs_per_op happened to be 0 in the bench"
// into a compile-time guarantee: CheckEscape recompiles every package
// that contains //dpi:hotpath-reachable code with -gcflags=-m, parses
// the compiler's escape-analysis verdicts, and fails on any heap
// allocation ("escapes to heap", "moved to heap") whose position falls
// inside a reachable function. The benchmark can only observe the
// corpora it was fed; the compiler's escape analysis covers every path,
// including the error branches a benchmark never takes.
//
// The hotpath purity check already bans the usual allocation factories
// (fmt, reflect, goroutines, defer) — this check catches the rest:
// a make() that outgrew its stack bound, a slice captured by a
// returned closure, an interface conversion boxing a scalar. Because
// `go build` caches compiled objects together with their diagnostics,
// a warm run costs milliseconds; only edited packages recompile.
//
// Not every reachable allocation is per-packet: first-use setup (a
// pooled scratch's gzip reader), per-flow state creation, error
// branches and match reporting all allocate by design, amortized away
// from the steady-state path. Those carry a //dpi:coldalloc(reason)
// waiver on the allocating line; a waiver that stops matching any
// compiler verdict is itself reported so stale waivers cannot rot in
// place.

// escapeLine matches one -m verdict: file:line:col: message.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// funcExtent is one declared function's source span.
type funcExtent struct {
	start, end token.Pos
	fn         *types.Func
}

// CheckEscape proves the absence of heap allocations in
// //dpi:hotpath-reachable functions. dir is the module root `go build`
// runs in; the module must already be loaded into m.
func CheckEscape(m *Module, ann *Annotations) ([]Diagnostic, error) {
	cg := newCallGraph(m)
	reached := cg.reachableFrom(hotpathRoots(ann))
	if len(reached) == 0 {
		return nil, nil
	}

	// The packages worth recompiling, and every reachable function's
	// extent indexed by filename for position lookup.
	pkgSet := make(map[string]bool)
	extents := make(map[string][]funcExtent)
	for fn := range reached {
		d := cg.idx[fn]
		if d.decl.Body == nil {
			continue
		}
		pkgSet[d.pkg.Path] = true
		file := m.Fset.Position(d.decl.Pos()).Filename
		extents[file] = append(extents[file], funcExtent{start: d.decl.Pos(), end: d.decl.End(), fn: fn})
	}
	var pkgs []string
	for p := range pkgSet {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	out, err := buildWithEscapeAnalysis(m.Dir, pkgs)
	if err != nil {
		return nil, err
	}

	var diags []Diagnostic
	for _, line := range strings.Split(out, "\n") {
		sub := escapeLine.FindStringSubmatch(line)
		if sub == nil {
			continue
		}
		msg := sub[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		if strings.Contains(msg, "does not escape") {
			continue
		}
		file := sub[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(m.Dir, file)
		}
		lineNo, _ := strconv.Atoi(sub[2])
		colNo, _ := strconv.Atoi(sub[3])
		fn := enclosingFunc(m, extents[file], file, lineNo)
		if fn == nil {
			continue // allocation in cold code of a hot package
		}
		if waived(ann.coldalloc, file, lineNo) {
			continue
		}
		where := funcName(fn)
		if prov := reached[fn]; prov.via != nil {
			where += " (reached from " + funcName(prov.root) + ")"
		}
		diags = append(diags, Diagnostic{
			Pos:   token.Position{Filename: file, Line: lineNo, Column: colNo},
			Check: "escape",
			Msg:   "hot path: " + where + " heap-allocates: " + msg,
		})
	}
	// A coldalloc waiver that no compiler verdict hit is stale — the
	// allocation was fixed or moved — and must go.
	for _, w := range ann.coldalloc {
		if !w.used {
			diags = append(diags, Diagnostic{
				Pos:   m.Fset.Position(w.pos),
				Check: "escape",
				Msg:   "//dpi:coldalloc waiver covers no reported heap allocation",
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Msg < b.Msg
	})
	return diags, nil
}

// buildWithEscapeAnalysis compiles pkgs with -gcflags=-m and returns
// the compiler's combined diagnostic stream. A build *failure* is an
// error; -m chatter arrives on stderr and is the wanted output.
func buildWithEscapeAnalysis(dir string, pkgs []string) (string, error) {
	args := append([]string{"build", "-gcflags=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("lint: go build -gcflags=-m: %w\n%s", err, stderr.String())
	}
	return stdout.String() + stderr.String(), nil
}

// enclosingFunc finds the reachable function whose extent covers
// file:line, or nil.
func enclosingFunc(m *Module, exts []funcExtent, file string, line int) *types.Func {
	for _, e := range exts {
		start := m.Fset.Position(e.start)
		end := m.Fset.Position(e.end)
		if start.Filename == file && start.Line <= line && line <= end.Line {
			return e.fn
		}
	}
	return nil
}

// EscapePackages lists the packages CheckEscape would recompile — the
// ones holding //dpi:hotpath-reachable code — so callers can report
// scope.
func EscapePackages(m *Module, ann *Annotations) []string {
	cg := newCallGraph(m)
	reached := cg.reachableFrom(hotpathRoots(ann))
	pkgSet := make(map[string]bool)
	for fn := range reached {
		if d, ok := cg.idx[fn]; ok && d.decl.Body != nil {
			pkgSet[d.pkg.Path] = true
		}
	}
	var pkgs []string
	for p := range pkgSet {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	return pkgs
}
