package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader enumerates packages with `go list -export`, which yields
// both the file lists (honoring build constraints) and compiled export
// data for every dependency. Module packages are then re-type-checked
// from source — the checks need ASTs with comments and stable
// *types.Func identities across packages — while everything outside the
// module (stdlib, should external deps ever appear) is imported from
// its export data, so a whole-module run costs seconds, not a stdlib
// re-typecheck.

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` for patterns in dir and
// decodes the stream. Packages arrive in dependency order.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// exportImporter resolves import paths through compiled export data,
// consulting already source-checked module packages first.
type exportImporter struct {
	gc     types.Importer
	module map[string]*types.Package
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	imp := &exportImporter{module: make(map[string]*types.Package)}
	imp.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
	return imp
}

func (i *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := i.module[path]; ok {
		return p, nil
	}
	return i.gc.Import(path)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// checkPackage parses files and type-checks them as one package.
func checkPackage(fset *token.FileSet, imp types.Importer, path string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	info := newInfo()
	cfg := types.Config{Importer: imp}
	tpkg, err := cfg.Check(path, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Files: asts, Pkg: tpkg, Info: info}, nil
}

// LoadModule loads and type-checks every module package matched by
// patterns (typically "./...") relative to dir.
func LoadModule(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var modPkgs []*listPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.Standard && lp.Module != nil {
			modPkgs = append(modPkgs, lp)
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	absDir, err := filepath.Abs(dir)
	if err != nil {
		absDir = dir
	}
	m := &Module{Fset: fset, Dir: absDir}
	// go list -deps emits dependencies before dependents, so each
	// package's module imports are already in imp.module when its turn
	// comes.
	for _, lp := range modPkgs {
		files := make([]string, 0, len(lp.GoFiles))
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := checkPackage(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		imp.module[lp.ImportPath] = pkg.Pkg
		m.Pkgs = append(m.Pkgs, pkg)
	}
	if len(m.Pkgs) == 0 {
		return nil, fmt.Errorf("lint: no module packages matched %v", patterns)
	}
	return m, nil
}

// LoadDir loads the single package rooted at dir (used for violation
// fixtures, which live under testdata where go list does not reach).
// Imports are resolved through export data for the fixture's transitive
// dependencies.
func LoadDir(dir string) (*Module, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []string
	imports := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		af, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range af.Imports {
			imports[strings.Trim(spec.Path.Value, `"`)] = true
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for p := range imports {
			patterns = append(patterns, p)
		}
		listed, err := goList(dir, patterns)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	imp := newExportImporter(fset, exports)
	pkg, err := checkPackage(fset, imp, "fixture/"+filepath.Base(dir), files)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	return &Module{Fset: fset, Pkgs: []*Package{pkg}, Dir: abs}, nil
}
