package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// The annotation language is three comment directives:
//
//	//dpi:hotpath            on a function: it (and everything it calls
//	                         inside the module) is per-packet code.
//	//dpi:locked(mu)         on a function: the caller holds the lock
//	                         named mu for the duration of the call.
//	//dpi:guardedby(mu)      on a struct field: only touch it while the
//	                         lock named mu is held.
//	//dpi:ctx                on a function: it is RPC-shaped (crosses the
//	                         control plane or blocks on I/O) and must take
//	                         a context.Context as its first parameter.
//
// A directive may carry a trailing rationale after the closing token:
// "//dpi:hotpath scan loop" parses the same as "//dpi:hotpath".

var directiveRe = regexp.MustCompile(`^//dpi:(\w+)(?:\(([^)]*)\))?(?:\s.*)?$`)

type funcAnnotation struct {
	hotpath bool
	ctx     bool     // RPC-shaped: context.Context must come first
	locked  []string // lock names the caller is contracted to hold
}

// Annotations indexes every //dpi: directive in the module by the
// object it annotates.
type Annotations struct {
	funcs   map[*types.Func]*funcAnnotation
	guarded map[*types.Var]string // field -> lock name
	diags   []Diagnostic          // malformed or misplaced directives
}

func (a *Annotations) funcAnn(fn *types.Func) *funcAnnotation {
	if ann, ok := a.funcs[fn]; ok {
		return ann
	}
	ann := &funcAnnotation{}
	a.funcs[fn] = ann
	return ann
}

func (a *Annotations) isLocked(fn *types.Func, lock string) bool {
	ann, ok := a.funcs[fn]
	if !ok {
		return false
	}
	for _, l := range ann.locked {
		if l == lock {
			return true
		}
	}
	return false
}

// directive is one parsed //dpi: line.
type directive struct {
	name string
	arg  string
	pos  token.Pos
}

// directivesIn extracts //dpi: lines from a comment group.
func directivesIn(cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		if !strings.HasPrefix(c.Text, "//dpi:") {
			continue
		}
		d := directive{pos: c.Pos()}
		if m := directiveRe.FindStringSubmatch(c.Text); m != nil {
			d.name, d.arg = m[1], m[2]
		}
		out = append(out, d)
	}
	return out
}

// collectAnnotations walks every file once, binding directives to the
// functions and fields they document and reporting malformed or
// misplaced ones.
func collectAnnotations(m *Module) *Annotations {
	ann := &Annotations{
		funcs:   make(map[*types.Func]*funcAnnotation),
		guarded: make(map[*types.Var]string),
	}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			// Comment groups consumed as a func doc or a field
			// doc/trailer; any //dpi: directive outside those spots is
			// dead weight and gets reported.
			consumed := make(map[*ast.CommentGroup]bool)
			ast.Inspect(file, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.FuncDecl:
					consumed[node.Doc] = true
					ann.bindFunc(m, pkg, node)
				case *ast.StructType:
					for _, field := range node.Fields.List {
						consumed[field.Doc] = true
						consumed[field.Comment] = true
						ann.bindField(m, pkg, field)
					}
				}
				return true
			})
			for _, cg := range file.Comments {
				if consumed[cg] {
					continue
				}
				for _, d := range directivesIn(cg) {
					ann.report(m, d.pos, "a //dpi: directive must be in a function or struct-field doc comment")
				}
			}
		}
	}
	return ann
}

func (a *Annotations) bindFunc(m *Module, pkg *Package, decl *ast.FuncDecl) {
	ds := directivesIn(decl.Doc)
	if len(ds) == 0 {
		return
	}
	fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	for _, d := range ds {
		switch {
		case d.name == "hotpath" && d.arg == "":
			a.funcAnn(fn).hotpath = true
		case d.name == "ctx" && d.arg == "":
			a.funcAnn(fn).ctx = true
		case d.name == "locked" && d.arg != "":
			fa := a.funcAnn(fn)
			fa.locked = append(fa.locked, d.arg)
		case d.name == "guardedby":
			a.report(m, d.pos, "//dpi:guardedby annotates struct fields, not functions")
		default:
			a.report(m, d.pos, "malformed directive: want //dpi:hotpath, //dpi:ctx or //dpi:locked(lockname)")
		}
	}
}

func (a *Annotations) bindField(m *Module, pkg *Package, field *ast.Field) {
	var ds []directive
	ds = append(ds, directivesIn(field.Doc)...)
	ds = append(ds, directivesIn(field.Comment)...)
	if len(ds) == 0 {
		return
	}
	for _, d := range ds {
		switch {
		case d.name == "guardedby" && d.arg != "":
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					a.guarded[v] = d.arg
				}
			}
		case d.name == "hotpath" || d.name == "locked" || d.name == "ctx":
			a.report(m, d.pos, "//dpi:"+d.name+" annotates functions, not fields")
		default:
			a.report(m, d.pos, "malformed directive: want //dpi:guardedby(lockname)")
		}
	}
}

func (a *Annotations) report(m *Module, pos token.Pos, msg string) {
	a.diags = append(a.diags, Diagnostic{Pos: m.Fset.Position(pos), Check: "annotation", Msg: msg})
}
