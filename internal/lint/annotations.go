package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// The annotation language is three comment directives:
//
//	//dpi:hotpath            on a function: it (and everything it calls
//	                         inside the module) is per-packet code.
//	//dpi:locked(mu)         on a function: the caller holds the lock
//	                         named mu for the duration of the call.
//	//dpi:guardedby(mu)      on a struct field: only touch it while the
//	                         lock named mu is held.
//	//dpi:ctx                on a function: it is RPC-shaped (crosses the
//	                         control plane or blocks on I/O) and must take
//	                         a context.Context as its first parameter.
//	//dpi:lockorder(a < b)   at file scope (or on a function): declares
//	                         that lock a precedes lock b in the module
//	                         hierarchy — acquiring a while b is held is a
//	                         violation. Lock names are the qualified
//	                         labels the lockorder check prints, e.g.
//	                         "core.flowShard.mu < core.flowState.mu".
//	//dpi:detached(reason)   on the line of (or the line above) a `go`
//	                         statement: waives the goroutine-lifecycle
//	                         check for a deliberately unsupervised
//	                         goroutine.
//	//dpi:coldalloc(reason)  on the line of (or the line above) a heap
//	                         allocation inside //dpi:hotpath-reachable
//	                         code: waives the -escape proof for an
//	                         allocation that is amortized or on a cold
//	                         branch (first-use setup, error paths,
//	                         match reporting).
//
// A directive may carry a trailing rationale after the closing token:
// "//dpi:hotpath scan loop" parses the same as "//dpi:hotpath".

var directiveRe = regexp.MustCompile(`^//dpi:(\w+)(?:\(([^)]*)\))?(?:\s.*)?$`)

type funcAnnotation struct {
	hotpath bool
	ctx     bool     // RPC-shaped: context.Context must come first
	locked  []string // lock names the caller is contracted to hold
}

// lockOrderRule is one declared //dpi:lockorder(before < after) edge:
// before is legal to hold while acquiring after, never the reverse.
type lockOrderRule struct {
	before, after string
	pos           token.Pos
}

// lineWaiver is one line-anchored waiver comment (//dpi:detached or
// //dpi:coldalloc), matched to the waived statement by file and line
// adjacency (same line, or the line below the comment).
type lineWaiver struct {
	file   string
	line   int
	reason string
	pos    token.Pos
	used   bool
}

// Annotations indexes every //dpi: directive in the module by the
// object it annotates.
type Annotations struct {
	funcs     map[*types.Func]*funcAnnotation
	guarded   map[*types.Var]string // field -> lock name
	lockorder []lockOrderRule
	detached  []*lineWaiver
	coldalloc []*lineWaiver
	diags     []Diagnostic // malformed or misplaced directives
}

func (a *Annotations) funcAnn(fn *types.Func) *funcAnnotation {
	if ann, ok := a.funcs[fn]; ok {
		return ann
	}
	ann := &funcAnnotation{}
	a.funcs[fn] = ann
	return ann
}

func (a *Annotations) isLocked(fn *types.Func, lock string) bool {
	ann, ok := a.funcs[fn]
	if !ok {
		return false
	}
	for _, l := range ann.locked {
		if l == lock {
			return true
		}
	}
	return false
}

// directive is one parsed //dpi: line.
type directive struct {
	name string
	arg  string
	pos  token.Pos
}

// directivesIn extracts //dpi: lines from a comment group.
func directivesIn(cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		if !strings.HasPrefix(c.Text, "//dpi:") {
			continue
		}
		d := directive{pos: c.Pos()}
		if m := directiveRe.FindStringSubmatch(c.Text); m != nil {
			d.name, d.arg = m[1], m[2]
		}
		out = append(out, d)
	}
	return out
}

// Annotate collects every //dpi: directive in the module. Exported for
// callers (cmd/dpilint -escape) that need the annotation index outside
// Run.
func Annotate(m *Module) *Annotations { return collectAnnotations(m) }

// collectAnnotations walks every file once, binding directives to the
// functions and fields they document and reporting malformed or
// misplaced ones.
func collectAnnotations(m *Module) *Annotations {
	ann := &Annotations{
		funcs:   make(map[*types.Func]*funcAnnotation),
		guarded: make(map[*types.Var]string),
	}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			// Comment groups consumed as a func doc or a field
			// doc/trailer; any //dpi: directive outside those spots is
			// dead weight and gets reported.
			consumed := make(map[*ast.CommentGroup]bool)
			ast.Inspect(file, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.FuncDecl:
					consumed[node.Doc] = true
					ann.bindFunc(m, pkg, node)
				case *ast.StructType:
					for _, field := range node.Fields.List {
						consumed[field.Doc] = true
						consumed[field.Comment] = true
						ann.bindField(m, pkg, field)
					}
				}
				return true
			})
			// lockorder declarations live at file scope; detached
			// waivers ride as comments beside `go` statements. Both
			// therefore surface here rather than as a func/field doc.
			for _, cg := range file.Comments {
				if consumed[cg] {
					continue
				}
				for _, d := range directivesIn(cg) {
					switch d.name {
					case "lockorder":
						ann.bindLockOrder(m, d)
					case "detached":
						ann.detached = ann.bindWaiver(m, ann.detached, d,
							"//dpi:detached needs a reason: //dpi:detached(why this goroutine is unsupervised)")
					case "coldalloc":
						ann.coldalloc = ann.bindWaiver(m, ann.coldalloc, d,
							"//dpi:coldalloc needs a reason: //dpi:coldalloc(why this allocation is amortized or cold)")
					default:
						ann.report(m, d.pos, "a //dpi: directive must be in a function or struct-field doc comment")
					}
				}
			}
		}
	}
	return ann
}

func (a *Annotations) bindFunc(m *Module, pkg *Package, decl *ast.FuncDecl) {
	ds := directivesIn(decl.Doc)
	if len(ds) == 0 {
		return
	}
	fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	for _, d := range ds {
		switch {
		case d.name == "hotpath" && d.arg == "":
			a.funcAnn(fn).hotpath = true
		case d.name == "ctx" && d.arg == "":
			a.funcAnn(fn).ctx = true
		case d.name == "locked" && d.arg != "":
			fa := a.funcAnn(fn)
			fa.locked = append(fa.locked, d.arg)
		case d.name == "lockorder":
			a.bindLockOrder(m, d)
		case d.name == "detached" || d.name == "coldalloc":
			a.report(m, d.pos, "//dpi:"+d.name+" goes on the line of (or above) the statement it waives, not the function doc")
		case d.name == "guardedby":
			a.report(m, d.pos, "//dpi:guardedby annotates struct fields, not functions")
		default:
			a.report(m, d.pos, "malformed directive: want //dpi:hotpath, //dpi:ctx or //dpi:locked(lockname)")
		}
	}
}

func (a *Annotations) bindField(m *Module, pkg *Package, field *ast.Field) {
	var ds []directive
	ds = append(ds, directivesIn(field.Doc)...)
	ds = append(ds, directivesIn(field.Comment)...)
	if len(ds) == 0 {
		return
	}
	for _, d := range ds {
		switch {
		case d.name == "guardedby" && d.arg != "":
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					a.guarded[v] = d.arg
				}
			}
		case d.name == "hotpath" || d.name == "locked" || d.name == "ctx" || d.name == "lockorder" || d.name == "detached" || d.name == "coldalloc":
			a.report(m, d.pos, "//dpi:"+d.name+" annotates functions, not fields")
		default:
			a.report(m, d.pos, "malformed directive: want //dpi:guardedby(lockname)")
		}
	}
}

// bindWaiver records one line-anchored waiver directive, or reports it
// when the reason is missing.
func (a *Annotations) bindWaiver(m *Module, list []*lineWaiver, d directive, errMsg string) []*lineWaiver {
	if d.arg == "" {
		a.report(m, d.pos, errMsg)
		return list
	}
	pos := m.Fset.Position(d.pos)
	return append(list, &lineWaiver{file: pos.Filename, line: pos.Line, reason: d.arg, pos: d.pos})
}

// bindLockOrder parses one //dpi:lockorder(a < b) directive.
func (a *Annotations) bindLockOrder(m *Module, d directive) {
	before, after, ok := strings.Cut(d.arg, "<")
	before, after = strings.TrimSpace(before), strings.TrimSpace(after)
	if !ok || before == "" || after == "" {
		a.report(m, d.pos, "malformed directive: want //dpi:lockorder(lockA < lockB)")
		return
	}
	a.lockorder = append(a.lockorder, lockOrderRule{before: before, after: after, pos: d.pos})
}

func (a *Annotations) report(m *Module, pos token.Pos, msg string) {
	a.diags = append(a.diags, Diagnostic{Pos: m.Fset.Position(pos), Check: "annotation", Msg: msg})
}
