package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// The lockorder check builds a module-wide lock-acquisition graph: an
// edge A → B means some execution path acquires lock B while lock A is
// held, either directly in one function body or by calling (through the
// static call graph, interface dispatch included) a function that
// acquires B. Two properties are enforced on that graph:
//
//   - acyclicity: a cycle A → … → A is a potential deadlock — two
//     goroutines entering the cycle at different points can each hold
//     the lock the other needs. The diagnostic prints the acquisition
//     path, call site by call site.
//   - declared hierarchy: //dpi:lockorder(a < b) pins a to be acquired
//     strictly before b; any edge b → a is a violation even before it
//     closes a cycle, so the hierarchy catches drift early.
//
// Lock identity is the owning type: x.mu on a *flowShard receiver is
// "core.flowShard.mu" no matter which shard instance x names. That
// collapses all instances of one type onto one node, which is the
// granularity deadlock reasoning needs — two different shards' locks
// are interchangeable for ordering purposes — at the cost of a
// self-edge (A → A) when code nests two instances of the same lock.
// Self-edges are reported too: nesting same-type locks needs an
// instance order (address, shard index) the graph cannot see.
//
// Goroutine boundaries are respected: a func literal launched by `go`
// does not inherit the launcher's held set (the goroutine runs on its
// own schedule), and locks acquired inside it do not count as
// acquisitions of the enclosing function; the literal is analyzed as
// its own root with an empty held set.

// lockAcq is one direct lock acquisition, with the labels already held
// at that point in the lexical replay.
type lockAcq struct {
	label string
	held  []string
	pos   token.Pos
}

// lockCall is one resolvable module call, with the labels held at the
// call site (possibly none).
type lockCall struct {
	held    []string
	callees []*types.Func
	pos     token.Pos
}

// scanUnit is one analyzed body: a function declaration, or a func
// literal launched by a go statement (which starts lock-free).
type scanUnit struct {
	fn    *types.Func // nil for go-literal units
	label string      // diagnostic name, e.g. "core.Engine.Inspect"
	acqs  []lockAcq
	calls []lockCall
}

// lockLabel names the mutex behind expr x (the receiver of a
// Lock/Unlock call): field locks by owning type, package-level locks by
// package, function-local locks by enclosing function.
func lockLabel(pkg *Package, fnLabel string, x ast.Expr) string {
	x = ast.Unparen(x)
	switch e := x.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			t := sel.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + e.Sel.Name
			}
		}
		if obj, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + e.Sel.Name
		}
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[e].(*types.Var); ok && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + e.Name
			}
			return fnLabel + "." + e.Name
		}
	}
	return pkg.Pkg.Name() + "." + types.ExprString(x)
}

// scanLockBody walks one body lexically — the same discipline the
// guardedby check uses — recording every lock acquisition with the held
// set in force, and every resolvable module call with the held set at
// the call site. Go statements are excluded wholesale (their literals
// become separate units; their callees run on another goroutine);
// deferred unlocks never release.
func scanLockBody(cg *callGraph, pkg *Package, fnLabel string, body ast.Node) (acqs []lockAcq, calls []lockCall) {
	type event struct {
		pos     token.Pos
		label   string
		kind    int // 0 lock, 1 unlock, 2 call
		callees []*types.Func
	}
	var events []event
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			deferred[node.Call] = true
		case *ast.CallExpr:
			if _, method, ok := isSyncLock(pkg.Info, node); ok {
				sel := ast.Unparen(node.Fun).(*ast.SelectorExpr)
				label := lockLabel(pkg, fnLabel, sel.X)
				if acquiresLock(method) {
					events = append(events, event{pos: node.Pos(), label: label, kind: 0})
				} else if !deferred[node] {
					events = append(events, event{pos: node.Pos(), label: label, kind: 1})
				}
				return true
			}
			if callees := cg.resolve(pkg.Info, node); len(callees) > 0 {
				events = append(events, event{pos: node.Pos(), kind: 2, callees: callees})
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	var held []string
	snapshot := func() []string { return append([]string(nil), held...) }
	for _, ev := range events {
		switch ev.kind {
		case 0:
			acqs = append(acqs, lockAcq{label: ev.label, held: snapshot(), pos: ev.pos})
			held = append(held, ev.label)
		case 1:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == ev.label {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case 2:
			calls = append(calls, lockCall{held: snapshot(), callees: ev.callees, pos: ev.pos})
		}
	}
	return acqs, calls
}

// transAcquire is one lock a function may acquire transitively, with a
// one-step witness for path reconstruction.
type transAcquire struct {
	pos token.Pos   // acquisition or call position inside fn
	via *types.Func // nil: fn acquires it directly at pos
}

// lockEdge is A → B with a witness path for the diagnostic.
type lockEdge struct {
	from, to string
	witness  string
	pos      token.Pos
}

func checkLockOrder(m *Module, ann *Annotations) []Diagnostic {
	cg := newCallGraph(m)
	position := func(p token.Pos) string {
		pos := m.Fset.Position(p)
		return shortPath(pos.Filename) + ":" + strconv.Itoa(pos.Line)
	}

	// Pass 1: per-unit lexical facts. Go-literal bodies are their own
	// lock-free roots, analyzed alongside the declared functions.
	var units []*scanUnit
	byFn := make(map[*types.Func]*scanUnit)
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				label := pkg.Pkg.Name() + "." + fd.Name.Name
				if fn != nil {
					label = funcName(fn)
				}
				u := &scanUnit{fn: fn, label: label}
				u.acqs, u.calls = scanLockBody(cg, pkg, label, fd.Body)
				units = append(units, u)
				if fn != nil {
					byFn[fn] = u
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
						gu := &scanUnit{label: label + " (go statement)"}
						gu.acqs, gu.calls = scanLockBody(cg, pkg, label, lit.Body)
						units = append(units, gu)
					}
					return true
				})
			}
		}
	}

	// Pass 2: fixpoint — the set of locks each function may acquire
	// through any chain of module calls. Recursion converges because
	// the sets only grow; iteration order is sorted so the stored
	// witnesses are stable run to run.
	var fns []*types.Func
	for fn := range byFn {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return funcName(fns[i]) < funcName(fns[j]) })
	trans := make(map[*types.Func]map[string]transAcquire)
	for _, fn := range fns {
		set := make(map[string]transAcquire)
		for _, a := range byFn[fn].acqs {
			if _, ok := set[a.label]; !ok {
				set[a.label] = transAcquire{pos: a.pos}
			}
		}
		trans[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			set := trans[fn]
			for _, c := range byFn[fn].calls {
				for _, callee := range c.callees {
					for label := range trans[callee] {
						if _, ok := set[label]; !ok {
							set[label] = transAcquire{pos: c.pos, via: callee}
							changed = true
						}
					}
				}
			}
		}
	}

	// chainTo renders the witness path from fn down to the direct
	// acquisition of label.
	var chainTo func(fn *types.Func, label string, depth int) string
	chainTo = func(fn *types.Func, label string, depth int) string {
		ta, ok := trans[fn][label]
		if !ok || depth > 16 {
			return funcName(fn) + " … acquires " + label
		}
		if ta.via == nil {
			return funcName(fn) + " acquires " + label + " at " + position(ta.pos)
		}
		return funcName(fn) + " calls " + funcName(ta.via) + " at " + position(ta.pos) + ", " + chainTo(ta.via, label, depth+1)
	}

	// Pass 3: edges. Sorted unit order keeps the first — and therefore
	// reported — witness per edge deterministic.
	sort.Slice(units, func(i, j int) bool { return units[i].label < units[j].label })
	edges := make(map[[2]string]lockEdge)
	addEdge := func(from, to, witness string, pos token.Pos) {
		key := [2]string{from, to}
		if _, ok := edges[key]; !ok {
			edges[key] = lockEdge{from: from, to: to, witness: witness, pos: pos}
		}
	}
	for _, u := range units {
		for _, a := range u.acqs {
			for _, h := range a.held {
				if h == a.label {
					addEdge(h, a.label, u.label+" acquires a second "+a.label+" at "+position(a.pos)+" while one is held", a.pos)
				} else {
					addEdge(h, a.label, u.label+" acquires "+a.label+" at "+position(a.pos)+" while holding "+h, a.pos)
				}
			}
		}
		for _, c := range u.calls {
			if len(c.held) == 0 {
				continue
			}
			for _, callee := range c.callees {
				for label := range trans[callee] {
					for _, h := range c.held {
						addEdge(h, label, u.label+" holds "+h+" and calls "+funcName(callee)+" at "+position(c.pos)+", "+chainTo(callee, label, 0), c.pos)
					}
				}
			}
		}
	}

	var diags []Diagnostic

	// Declared hierarchy: //dpi:lockorder(a < b) rules, closed
	// transitively, forbid any b → a edge.
	before := make(map[[2]string]token.Pos)
	for _, r := range ann.lockorder {
		key := [2]string{r.before, r.after}
		if _, dup := before[key]; !dup {
			before[key] = r.pos
		}
	}
	for changed := true; changed; {
		changed = false
		for ab, pos := range before {
			for bc := range before {
				if ab[1] != bc[0] {
					continue
				}
				key := [2]string{ab[0], bc[1]}
				if _, ok := before[key]; !ok {
					before[key] = pos
					changed = true
				}
			}
		}
	}
	for ab, pos := range before {
		if ab[0] == ab[1] {
			diags = append(diags, Diagnostic{
				Pos:   m.Fset.Position(pos),
				Check: "lockorder",
				Msg:   "declared lock order is cyclic: " + ab[0] + " < … < " + ab[0],
			})
		}
	}
	for _, e := range edges {
		if e.to == e.from {
			continue // reported as a self-edge below
		}
		if _, declared := before[[2]string{e.to, e.from}]; declared {
			diags = append(diags, Diagnostic{
				Pos:   m.Fset.Position(e.pos),
				Check: "lockorder",
				Msg:   "acquisition violates declared lock order " + e.to + " < " + e.from + ": " + e.witness,
			})
		}
	}

	// Self-edges and cycles.
	adj := make(map[string][]string)
	labels := make(map[string]bool)
	for key := range edges {
		if key[0] != key[1] {
			adj[key[0]] = append(adj[key[0]], key[1])
		}
		labels[key[0]], labels[key[1]] = true, true
	}
	for from := range adj {
		sort.Strings(adj[from])
	}
	for key, e := range edges {
		if key[0] == key[1] {
			diags = append(diags, Diagnostic{
				Pos:   m.Fset.Position(e.pos),
				Check: "lockorder",
				Msg:   "potential deadlock: " + e.from + " may be acquired while another " + e.from + " is held: " + e.witness,
			})
		}
	}
	for _, comp := range sccs(labels, adj) {
		if len(comp) < 2 {
			continue
		}
		sort.Strings(comp)
		cycle := shortestCycle(comp[0], comp, adj)
		var parts []string
		var pos token.Pos
		for i := 0; i < len(cycle); i++ {
			e := edges[[2]string{cycle[i], cycle[(i+1)%len(cycle)]}]
			if i == 0 {
				pos = e.pos
			}
			parts = append(parts, e.witness)
		}
		diags = append(diags, Diagnostic{
			Pos:   m.Fset.Position(pos),
			Check: "lockorder",
			Msg: "potential deadlock: lock-order cycle " + strings.Join(cycle, " → ") + " → " + cycle[0] +
				" (" + strings.Join(parts, " | ") + ")",
		})
	}
	return diags
}

// sccs returns the strongly connected components of the label graph
// (iterative Tarjan, deterministic order).
func sccs(labels map[string]bool, adj map[string][]string) [][]string {
	var order []string
	for l := range labels {
		order = append(order, l)
	}
	sort.Strings(order)
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		next++
		index[v], low[v] = next, next
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comps
}

// shortestCycle finds a shortest cycle through start restricted to
// comp's nodes (BFS back to start).
func shortestCycle(start string, comp []string, adj map[string][]string) []string {
	in := make(map[string]bool, len(comp))
	for _, c := range comp {
		in[c] = true
	}
	parent := make(map[string]string)
	queue := []string{start}
	visited := map[string]bool{start: true}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if !in[w] {
				continue
			}
			if w == start {
				path := []string{start}
				var rev []string
				for u := v; u != start; u = parent[u] {
					rev = append(rev, u)
				}
				for i := len(rev) - 1; i >= 0; i-- {
					path = append(path, rev[i])
				}
				return path
			}
			if !visited[w] {
				visited[w] = true
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return []string{start}
}

// shortPath trims an absolute filename to its last two segments for
// diagnostic-sized witnesses.
func shortPath(name string) string {
	if i := strings.LastIndex(name, "/"); i >= 0 {
		if j := strings.LastIndex(name[:i], "/"); j >= 0 {
			return name[j+1:]
		}
	}
	return name
}
