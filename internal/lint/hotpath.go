package lint

import (
	"go/ast"
)

// The hotpath check enforces per-packet purity: a function annotated
// //dpi:hotpath, and every module function transitively reachable from
// it, must not
//
//   - call into fmt or reflect (formatting and reflection allocate and
//     are never needed per packet),
//   - call time.Now (per-packet clock reads belong in telemetry ticks),
//   - start a goroutine or use defer (both allocate on this path and
//     defer hides lock extents from the guardedby check),
//   - acquire any mutex except a shard's or flow's designated "mu"
//     (the only locks with a bounded, scan-free critical section).
//
// Reachability is resolved over the module's static call graph (see
// callgraph.go). Calls through plain func values are invisible to the
// graph, so hot callbacks — like the scratch emit closure — carry their
// own //dpi:hotpath annotation. The -escape mode (escape.go) extends
// this reachable set with a compiler-verified zero-allocation proof.

func checkHotpath(m *Module, ann *Annotations) []Diagnostic {
	cg := newCallGraph(m)
	reached := cg.reachableFrom(hotpathRoots(ann))

	var diags []Diagnostic
	for fn, prov := range reached {
		d := cg.idx[fn]
		if d.decl.Body == nil {
			continue
		}
		where := funcName(fn)
		if prov.via != nil {
			where += " (reached from " + funcName(prov.root) + ")"
		}
		report := func(n ast.Node, what string) {
			diags = append(diags, Diagnostic{
				Pos:   m.Fset.Position(n.Pos()),
				Check: "hotpath",
				Msg:   "hot path: " + where + " " + what,
			})
		}
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.GoStmt:
				report(node, "starts a goroutine")
			case *ast.DeferStmt:
				report(node, "uses defer")
			case *ast.CallExpr:
				if name, method, ok := isSyncLock(d.pkg.Info, node); ok {
					if acquiresLock(method) && name != "mu" {
						report(node, "acquires mutex "+name+" (only a shard/flow \"mu\" may be locked per packet)")
					}
					return true
				}
				callee := calleeOf(d.pkg.Info, node)
				switch path := pkgPathOf(callee); {
				case path == "fmt":
					report(node, "calls fmt."+callee.Name())
				case path == "reflect":
					report(node, "calls reflect."+callee.Name())
				case path == "time" && callee.Name() == "Now":
					report(node, "calls time.Now")
				}
			}
			return true
		})
	}
	return diags
}
