package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// The hotpath check enforces per-packet purity: a function annotated
// //dpi:hotpath, and every module function transitively reachable from
// it, must not
//
//   - call into fmt or reflect (formatting and reflection allocate and
//     are never needed per packet),
//   - call time.Now (per-packet clock reads belong in telemetry ticks),
//   - start a goroutine or use defer (both allocate on this path and
//     defer hides lock extents from the guardedby check),
//   - acquire any mutex except a shard's or flow's designated "mu"
//     (the only locks with a bounded, scan-free critical section).
//
// Reachability is resolved over the module's static call graph. Calls
// through interfaces declared in the module (e.g. mpm.Automaton.Scan)
// fan out to every module implementation; calls through plain func
// values are invisible to the graph, so hot callbacks — like the
// scratch emit closure — carry their own //dpi:hotpath annotation.

// declOf locates the AST and package of a module function.
type declOf struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// funcIndex maps every module function to its declaration.
func funcIndex(m *Module) map[*types.Func]declOf {
	idx := make(map[*types.Func]declOf)
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						idx[fn] = declOf{decl: fd, pkg: pkg}
					}
				}
			}
		}
	}
	return idx
}

// moduleNamedTypes collects every named (non-interface) type declared
// in the module, for interface-dispatch expansion.
func moduleNamedTypes(m *Module) []*types.Named {
	var out []*types.Named
	for _, pkg := range m.Pkgs {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// moduleInterfaceMethod reports whether fn is a method of an interface
// type declared inside the module.
func moduleInterfaceMethod(m *Module, fn *types.Func) (*types.Interface, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	recv := sig.Recv().Type()
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil, false
	}
	if fn.Pkg() == nil {
		return nil, false
	}
	for _, pkg := range m.Pkgs {
		if pkg.Pkg == fn.Pkg() {
			return iface, true
		}
	}
	return nil, false
}

func checkHotpath(m *Module, ann *Annotations) []Diagnostic {
	idx := funcIndex(m)
	namedTypes := moduleNamedTypes(m)

	// implementersOf resolves an interface method to the corresponding
	// concrete methods of every module type satisfying the interface.
	implementersOf := func(iface *types.Interface, name string) []*types.Func {
		var out []*types.Func
		for _, named := range namedTypes {
			ptr := types.NewPointer(named)
			if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), name)
			if fn, ok := obj.(*types.Func); ok {
				if _, inModule := idx[fn]; inModule {
					out = append(out, fn)
				}
			}
		}
		return out
	}

	// callees returns the module functions a body can call directly.
	callees := func(d declOf) []*types.Func {
		var out []*types.Func
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(d.pkg.Info, call)
			if fn == nil {
				return true
			}
			if iface, ok := moduleInterfaceMethod(m, fn); ok {
				out = append(out, implementersOf(iface, fn.Name())...)
				return true
			}
			if _, inModule := idx[fn]; inModule {
				out = append(out, fn)
			}
			return true
		})
		return out
	}

	// BFS from the annotated roots, recording how each function was
	// reached so diagnostics can name the responsible entry point.
	type provenance struct {
		root *types.Func
		via  *types.Func // immediate caller, nil at a root
	}
	reached := make(map[*types.Func]provenance)
	var queue []*types.Func
	var roots []*types.Func
	for fn, fa := range ann.funcs {
		if fa.hotpath {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return funcName(roots[i]) < funcName(roots[j]) })
	for _, fn := range roots {
		if _, ok := idx[fn]; !ok {
			continue // annotated declaration without a body in this load
		}
		reached[fn] = provenance{root: fn}
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		d := idx[fn]
		if d.decl.Body == nil {
			continue
		}
		for _, callee := range callees(d) {
			if _, seen := reached[callee]; seen {
				continue
			}
			reached[callee] = provenance{root: reached[fn].root, via: fn}
			queue = append(queue, callee)
		}
	}

	var diags []Diagnostic
	for fn, prov := range reached {
		d := idx[fn]
		if d.decl.Body == nil {
			continue
		}
		where := funcName(fn)
		if prov.via != nil {
			where += " (reached from " + funcName(prov.root) + ")"
		}
		report := func(n ast.Node, what string) {
			diags = append(diags, Diagnostic{
				Pos:   m.Fset.Position(n.Pos()),
				Check: "hotpath",
				Msg:   "hot path: " + where + " " + what,
			})
		}
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.GoStmt:
				report(node, "starts a goroutine")
			case *ast.DeferStmt:
				report(node, "uses defer")
			case *ast.CallExpr:
				if name, method, ok := isSyncLock(d.pkg.Info, node); ok {
					if (method == "Lock" || method == "RLock") && name != "mu" {
						report(node, "acquires mutex "+name+" (only a shard/flow \"mu\" may be locked per packet)")
					}
					return true
				}
				callee := calleeOf(d.pkg.Info, node)
				switch path := pkgPathOf(callee); {
				case path == "fmt":
					report(node, "calls fmt."+callee.Name())
				case path == "reflect":
					report(node, "calls reflect."+callee.Name())
				case path == "time" && callee.Name() == "Now":
					report(node, "calls time.Now")
				}
			}
			return true
		})
	}
	return diags
}
