package dpiservice_test

import (
	"fmt"

	"dpiservice"
)

// Example demonstrates the core idea: one engine scans a packet once
// against the merged pattern sets of every middlebox on its policy
// chain, and each middlebox reads its own section of the match report.
func Example() {
	ids := dpiservice.PatternSetFromStrings("ids", []string{"/etc/passwd", "attack-sig"})
	av := dpiservice.PatternSetFromStrings("av", []string{"malware-body"})

	engine, err := dpiservice.NewEngine(dpiservice.Config{
		Profiles: []dpiservice.Profile{
			{ID: 0, Name: "ids", Stateful: true, ReadOnly: true, Patterns: ids},
			{ID: 1, Name: "av", Patterns: av},
		},
		Chains: map[uint16][]int{1: {0, 1}},
	})
	if err != nil {
		panic(err)
	}

	flow := dpiservice.FiveTuple{
		Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2},
		SrcPort: 12345, DstPort: 80, Protocol: 6,
	}
	report, err := engine.Inspect(1, flow, []byte("GET /etc/passwd + malware-body"))
	if err != nil {
		panic(err)
	}
	for _, sec := range report.Sections {
		for _, e := range sec.Entries {
			fmt.Printf("middlebox %d: rule %d at byte %d\n", sec.Mbox, e.Pattern, e.Pos)
		}
	}
	// Output:
	// middlebox 0: rule 0 at byte 15
	// middlebox 1: rule 0 at byte 30
}

// ExampleEngine_Inspect_stateful shows a pattern split across two
// packets of one flow: the stateful middlebox sees it, a stateless one
// would not.
func ExampleEngine_Inspect_stateful() {
	set := dpiservice.PatternSetFromStrings("ids", []string{"cross-packet"})
	engine, err := dpiservice.NewEngine(dpiservice.Config{
		Profiles: []dpiservice.Profile{{ID: 0, Stateful: true, Patterns: set}},
		Chains:   map[uint16][]int{1: {0}},
	})
	if err != nil {
		panic(err)
	}
	flow := dpiservice.FiveTuple{SrcPort: 1, DstPort: 80, Protocol: 6}

	first, _ := engine.Inspect(1, flow, []byte("...cross-"))
	second, _ := engine.Inspect(1, flow, []byte("packet..."))
	fmt.Println("first packet report:", first)
	fmt.Println("second packet matches:", second.NumMatches())
	// Output:
	// first packet report: <nil>
	// second packet matches: 1
}

// ExampleNewController walks the control plane: register middleboxes,
// push patterns, define a chain, and derive an instance configuration.
func ExampleNewController() {
	ctl := dpiservice.NewController()
	if _, err := ctl.Register(dpiservice.Register{MboxID: "ids-1", Type: "ids"}); err != nil {
		panic(err)
	}
	if err := ctl.AddPatterns("ids-1", []dpiservice.PatternDef{
		{RuleID: 0, Content: []byte("attack-sig")},
	}); err != nil {
		panic(err)
	}
	tag, err := ctl.DefineChain([]string{"ids-1"})
	if err != nil {
		panic(err)
	}
	cfg, err := ctl.InstanceConfig([]uint16{tag}, false)
	if err != nil {
		panic(err)
	}
	engine, err := dpiservice.NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	report, _ := engine.Inspect(tag, dpiservice.FiveTuple{Protocol: 6}, []byte("an attack-sig"))
	fmt.Println("chain", tag, "matches:", report.NumMatches())
	// Output:
	// chain 1 matches: 1
}
