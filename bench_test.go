package dpiservice

// This file holds one testing.B benchmark per table and figure of the
// paper's evaluation (Section 6), plus the ablation benches listed in
// DESIGN.md. The cmd/dpibench binary runs the same experiments at the
// paper's full parameter ranges and prints tables; these benches are
// the quick, `go test -bench=.` entry point.

import (
	"bytes"
	"sync/atomic"
	"testing"

	"dpiservice/internal/bench"
	"dpiservice/internal/core"
	"dpiservice/internal/mpm"
	"dpiservice/internal/packet"
	"dpiservice/internal/patterns"
	"dpiservice/internal/traffic"
)

const benchSeed = 1

// corpus builds a deterministic HTTP-mix corpus with a sub-10% match
// fraction drawn from set.
func benchCorpus(set *patterns.Set, totalBytes int) [][]byte {
	var inject []string
	if set != nil {
		all := set.Strings()
		for i := 0; i < len(all) && i < 64; i++ {
			inject = append(inject, all[i])
		}
	}
	g := traffic.NewGenerator(traffic.Config{
		Seed: benchSeed + 7, Mix: traffic.HTTPMix,
		MatchFraction: 0.08, InjectPatterns: inject,
	})
	return g.Corpus(totalBytes)
}

func buildAC(b *testing.B, sets ...*patterns.Set) *mpm.ACFull {
	b.Helper()
	bd := mpm.NewBuilder()
	for i, s := range sets {
		if err := bd.AddSet(i, s.Strings()); err != nil {
			b.Fatal(err)
		}
	}
	a, err := bd.BuildFull()
	if err != nil {
		b.Fatal(err)
	}
	return a
}

func scanCorpus(b *testing.B, a mpm.Automaton, corpus [][]byte) {
	b.Helper()
	var total int64
	for _, p := range corpus {
		total += int64(len(p))
	}
	emit := func(refs []mpm.PatternRef, end int) {}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state := a.Start()
		for _, p := range corpus {
			state = a.Scan(p, state, mpm.AllSets, emit)
		}
	}
}

// BenchmarkFig8PatternCount is Figure 8's dominant effect: AC
// throughput versus the number of patterns. (The virtualization
// comparison, which needs wall-clock goroutine plumbing, lives in
// cmd/dpibench fig8.)
func BenchmarkFig8PatternCount(b *testing.B) {
	for _, n := range []int{500, 2000, 8000, patterns.ClamAVFullSize} {
		set := patterns.ClamAVLike(n, benchSeed)
		corpus := benchCorpus(set, 1<<20)
		a := buildAC(b, set)
		b.Run(name("patterns", n), func(b *testing.B) {
			b.ReportMetric(float64(a.MemoryBytes())/1e6, "MB")
			scanCorpus(b, a, corpus)
		})
	}
}

// BenchmarkTable2 measures the three configurations of Table 2:
// Snort1, Snort2, and the merged Snort1+Snort2 automaton.
func BenchmarkTable2(b *testing.B) {
	full := patterns.SnortLike(patterns.SnortFullSize, benchSeed)
	halves, err := patterns.Split(full, 2, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	corpus := benchCorpus(full, 1<<20)
	for _, tc := range []struct {
		name string
		sets []*patterns.Set
	}{
		{"Snort1", halves[:1]},
		{"Snort2", halves[1:]},
		{"Snort1+Snort2", halves},
	} {
		a := buildAC(b, tc.sets...)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportMetric(float64(a.MemoryBytes())/1e6, "MB")
			scanCorpus(b, a, corpus)
		})
	}
}

// BenchmarkFig9aPipelineVsVirtual measures the two architectures of
// Figure 9(a) at the full Snort-like scale: a pipeline of two separate
// middleboxes (every packet scanned twice — once per set) versus the
// merged virtual-DPI automaton (scanned once; two instances then double
// the aggregate, see EXPERIMENTS.md).
func BenchmarkFig9aPipelineVsVirtual(b *testing.B) {
	full := patterns.SnortLike(patterns.SnortFullSize, benchSeed)
	halves, err := patterns.Split(full, 2, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	corpus := benchCorpus(full, 1<<20)
	a1, a2 := buildAC(b, halves[0]), buildAC(b, halves[1])
	comb := buildAC(b, halves[0], halves[1])
	b.Run("pipeline", func(b *testing.B) {
		var total int64
		for _, p := range corpus {
			total += int64(len(p))
		}
		emit := func(refs []mpm.PatternRef, end int) {}
		b.SetBytes(total)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s1, s2 := a1.Start(), a2.Start()
			for _, p := range corpus {
				s1 = a1.Scan(p, s1, mpm.AllSets, emit)
				s2 = a2.Scan(p, s2, mpm.AllSets, emit)
			}
		}
	})
	b.Run("virtual-combined", func(b *testing.B) {
		scanCorpus(b, comb, corpus)
	})
}

// BenchmarkFig9bSnortPlusClamAV is Figure 9(b)'s heavyweight point:
// full Snort-like plus full ClamAV-like sets.
func BenchmarkFig9bSnortPlusClamAV(b *testing.B) {
	if testing.Short() {
		b.Skip("builds a ~36k-pattern full-table DFA")
	}
	snort := patterns.SnortLike(patterns.SnortFullSize, benchSeed)
	clam := patterns.ClamAVLike(patterns.ClamAVFullSize, benchSeed)
	corpus := benchCorpus(snort, 1<<20)
	aS, aC := buildAC(b, snort), buildAC(b, clam)
	comb := buildAC(b, snort, clam)
	b.Run("pipeline", func(b *testing.B) {
		var total int64
		for _, p := range corpus {
			total += int64(len(p))
		}
		emit := func(refs []mpm.PatternRef, end int) {}
		b.SetBytes(total)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s1, s2 := aS.Start(), aC.Start()
			for _, p := range corpus {
				s1 = aS.Scan(p, s1, mpm.AllSets, emit)
				s2 = aC.Scan(p, s2, mpm.AllSets, emit)
			}
		}
	})
	b.Run("virtual-combined", func(b *testing.B) {
		scanCorpus(b, comb, corpus)
	})
}

// BenchmarkFig10Regions measures the three throughputs from which the
// Figure 10 regions are drawn: each dedicated box and the merged
// automaton (rectangle sides and triangle budget).
func BenchmarkFig10Regions(b *testing.B) {
	full := patterns.SnortLike(patterns.SnortFullSize, benchSeed)
	halves, err := patterns.Split(full, 2, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	corpus := benchCorpus(full, 1<<20)
	for _, tc := range []struct {
		name string
		sets []*patterns.Set
	}{
		{"rect-sideA", halves[:1]},
		{"rect-sideB", halves[1:]},
		{"triangle-combined", halves},
	} {
		a := buildAC(b, tc.sets...)
		b.Run(tc.name, func(b *testing.B) { scanCorpus(b, a, corpus) })
	}
}

// BenchmarkFig11ReportBuild measures the full instance path that
// produces Figure 11's reports: inspect, filter, coalesce, encode.
func BenchmarkFig11ReportBuild(b *testing.B) {
	set := patterns.SnortLike(patterns.SnortFullSize, benchSeed)
	cfg := core.Config{
		Profiles: []core.Profile{{ID: 0, Name: "ids", Patterns: set}},
		Chains:   map[uint16][]int{1: {0}},
	}
	e, err := core.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	corpus := benchCorpus(set, 1<<20)
	tuple := packet.FiveTuple{Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}, DstPort: 80, Protocol: packet.IPProtoTCP}
	var total int64
	for _, p := range corpus {
		total += int64(len(p))
	}
	var encoded []byte
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, p := range corpus {
			tuple.SrcPort = uint16(j)
			rep, err := e.Inspect(1, tuple, p)
			if err != nil {
				b.Fatal(err)
			}
			if rep != nil {
				encoded = rep.AppendEncoded(encoded[:0])
			}
		}
	}
}

// BenchmarkSlowdownScanVsConsume is the Section 1 footnote: the
// per-packet cost of scanning versus consuming a prebuilt result.
func BenchmarkSlowdownScanVsConsume(b *testing.B) {
	set := patterns.SnortLike(patterns.SnortFullSize, benchSeed)
	corpus := benchCorpus(set, 1<<20)
	cfg := core.Config{
		Profiles: []core.Profile{{ID: 0, Name: "ids", Patterns: set}},
		Chains:   map[uint16][]int{1: {0}},
	}
	tuple := packet.FiveTuple{Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}, DstPort: 80, Protocol: packet.IPProtoTCP}

	b.Run("middlebox-with-dpi", func(b *testing.B) {
		e, err := core.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		n := 0
		for i := 0; i < b.N; i++ {
			p := corpus[n%len(corpus)]
			tuple.SrcPort = uint16(n)
			if _, err := e.Inspect(1, tuple, p); err != nil {
				b.Fatal(err)
			}
			n++
		}
	})
	b.Run("middlebox-consuming-results", func(b *testing.B) {
		e, err := core.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reports := make([][]byte, len(corpus))
		for j, p := range corpus {
			tuple.SrcPort = uint16(j)
			rep, err := e.Inspect(1, tuple, p)
			if err != nil {
				b.Fatal(err)
			}
			if rep != nil {
				reports[j] = rep.AppendEncoded(nil)
			}
		}
		var rep packet.Report
		var rules uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc := reports[i%len(reports)]
			if enc == nil {
				continue
			}
			if _, err := packet.DecodeReport(enc, &rep); err != nil {
				b.Fatal(err)
			}
			if sec := rep.SectionFor(0); sec != nil {
				for _, en := range sec.Entries {
					rules += uint64(en.Count)
				}
			}
		}
		_ = rules
	})
}

// BenchmarkAblationMatchers compares the three matcher representations
// (the space-time tradeoff behind MCA² dedicated instances).
func BenchmarkAblationMatchers(b *testing.B) {
	set := patterns.SnortLike(patterns.SnortFullSize, benchSeed)
	corpus := benchCorpus(set, 1<<20)
	bd := mpm.NewBuilder()
	if err := bd.AddSet(0, set.Strings()); err != nil {
		b.Fatal(err)
	}
	full, err := bd.BuildFull()
	if err != nil {
		b.Fatal(err)
	}
	compact, err := bd.BuildCompact()
	if err != nil {
		b.Fatal(err)
	}
	bitmap, err := bd.BuildBitmap()
	if err != nil {
		b.Fatal(err)
	}
	wm, err := bd.BuildWuManber()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ac-full", func(b *testing.B) { scanCorpus(b, full, corpus) })
	b.Run("ac-bitmap", func(b *testing.B) { scanCorpus(b, bitmap, corpus) })
	b.Run("ac-compact", func(b *testing.B) { scanCorpus(b, compact, corpus) })
	b.Run("wu-manber", func(b *testing.B) {
		var total int64
		for _, p := range corpus {
			total += int64(len(p))
		}
		emit := func(refs []mpm.PatternRef, end int) {}
		b.SetBytes(total)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range corpus {
				wm.Find(p, emit)
			}
		}
	})
}

// BenchmarkWarmStart compares building the merged automaton from
// patterns against loading it from a snapshot — the instance
// warm-start path used when the controller scales out (Section 4.3).
func BenchmarkWarmStart(b *testing.B) {
	set := patterns.SnortLike(patterns.SnortFullSize, benchSeed)
	bd := mpm.NewBuilder()
	if err := bd.AddSet(0, set.Strings()); err != nil {
		b.Fatal(err)
	}
	built, err := bd.BuildFull()
	if err != nil {
		b.Fatal(err)
	}
	var snap bytes.Buffer
	if _, err := built.WriteTo(&snap); err != nil {
		b.Fatal(err)
	}
	b.Run("build-from-patterns", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bd := mpm.NewBuilder()
			if err := bd.AddSet(0, set.Strings()); err != nil {
				b.Fatal(err)
			}
			if _, err := bd.BuildFull(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load-snapshot", func(b *testing.B) {
		b.SetBytes(int64(snap.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := mpm.ReadACFull(bytes.NewReader(snap.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBitmapFiltering scans an 8-set merged automaton with
// 1 vs 8 sets active: the per-state bitmap should make inactive sets
// nearly free.
func BenchmarkAblationBitmapFiltering(b *testing.B) {
	bd := mpm.NewBuilder()
	var first *patterns.Set
	for s := 0; s < 8; s++ {
		set := patterns.SnortLike(500, benchSeed+int64(s))
		if s == 0 {
			first = set
		}
		if err := bd.AddSet(s, set.Strings()); err != nil {
			b.Fatal(err)
		}
	}
	a, err := bd.BuildFull()
	if err != nil {
		b.Fatal(err)
	}
	corpus := benchCorpus(first, 1<<20)
	for _, k := range []int{1, 8} {
		var active uint64
		for s := 0; s < k; s++ {
			active |= mpm.SetBit(s)
		}
		b.Run(name("active", k), func(b *testing.B) {
			var total int64
			for _, p := range corpus {
				total += int64(len(p))
			}
			emit := func(refs []mpm.PatternRef, end int) {}
			b.SetBytes(total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				state := a.Start()
				for _, p := range corpus {
					state = a.Scan(p, state, active, emit)
				}
			}
		})
	}
}

// BenchmarkEngineStatefulVsStateless isolates the cost of per-flow
// state maintenance in the instance path.
func BenchmarkEngineStatefulVsStateless(b *testing.B) {
	set := patterns.SnortLike(2000, benchSeed)
	corpus := benchCorpus(set, 1<<20)
	for _, stateful := range []bool{false, true} {
		nm := "stateless"
		if stateful {
			nm = "stateful"
		}
		b.Run(nm, func(b *testing.B) {
			cfg := core.Config{
				Profiles: []core.Profile{{ID: 0, Stateful: stateful, Patterns: set}},
				Chains:   map[uint16][]int{1: {0}},
			}
			e, err := core.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			r := bench.MeasureEngine(nm, e, 1, corpus, 64, 1)
			_ = r
			tuple := packet.FiveTuple{Src: packet.IP4{1, 1, 1, 1}, Dst: packet.IP4{2, 2, 2, 2}, DstPort: 80, Protocol: packet.IPProtoTCP}
			var total int64
			for _, p := range corpus {
				total += int64(len(p))
			}
			b.SetBytes(total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, p := range corpus {
					tuple.SrcPort = uint16(j % 64)
					if _, err := e.Inspect(1, tuple, p); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkParallelInspect drives one sharded engine from b.RunParallel
// goroutines, each scanning its own flow population — the multi-core
// scaling of the data plane. Run with `-cpu 1,2,4,8` to sweep cores:
//
//	go test -bench BenchmarkParallelInspect -cpu 1,2,4,8 .
//
// Aggregate throughput (the ns/op and MB/s columns are per-parallel
// unit of work) should grow near-linearly until the core count exceeds
// the shard count.
func BenchmarkParallelInspect(b *testing.B) {
	set := patterns.SnortLike(2000, benchSeed)
	corpus := benchCorpus(set, 1<<20)
	cfg := core.Config{
		Profiles: []core.Profile{{ID: 0, Name: "ids", Patterns: set}},
		Chains:   map[uint16][]int{1: {0}},
	}
	e, err := core.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var total int64
	for _, p := range corpus {
		total += int64(len(p))
	}
	var nextWorker atomic.Int64
	b.SetBytes(total)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// A distinct source IP per goroutine keeps flow populations
		// disjoint, so goroutines contend only on shard locks.
		w := nextWorker.Add(1)
		tuple := packet.FiveTuple{
			Src:      packet.IP4{10, 1, byte(w >> 8), byte(w)},
			Dst:      packet.IP4{10, 0, 0, 2},
			DstPort:  80,
			Protocol: packet.IPProtoTCP,
		}
		for pb.Next() {
			for j, p := range corpus {
				tuple.SrcPort = uint16(j % 64)
				if _, err := e.Inspect(1, tuple, p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkInspectBatch measures the batch entry point itself at
// GOMAXPROCS workers (compare against the workers=1 run for the
// speedup the dpibench `parallel` experiment tabulates).
func BenchmarkInspectBatch(b *testing.B) {
	set := patterns.SnortLike(2000, benchSeed)
	corpus := benchCorpus(set, 1<<20)
	cfg := core.Config{
		Profiles: []core.Profile{{ID: 0, Name: "ids", Patterns: set}},
		Chains:   map[uint16][]int{1: {0}},
	}
	e, err := core.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	items := make([]core.BatchItem, len(corpus))
	var total int64
	for j, p := range corpus {
		items[j] = core.BatchItem{
			Tag: 1,
			Tuple: packet.FiveTuple{
				Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2},
				SrcPort: uint16(j % 64), DstPort: 80, Protocol: packet.IPProtoTCP,
			},
			Payload: p,
		}
		total += int64(len(p))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.InspectBatch(items, 0)
	}
	b.StopTimer()
	for i := range items {
		if items[i].Err != nil {
			b.Fatal(items[i].Err)
		}
	}
}

// BenchmarkReportEncodeDecode measures the wire codec of Section 6.5.
func BenchmarkReportEncodeDecode(b *testing.B) {
	var r packet.Report
	r.PacketID = 1
	for i := uint32(0); i < 8; i++ {
		r.AddMatch(uint8(i%3), uint16(i*7), 10+i*13)
	}
	enc := r.AppendEncoded(nil)
	b.Run("encode", func(b *testing.B) {
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = r.AppendEncoded(buf[:0])
		}
	})
	b.Run("decode", func(b *testing.B) {
		var dst packet.Report
		for i := 0; i < b.N; i++ {
			if _, err := packet.DecodeReport(enc, &dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func name(prefix string, n int) string {
	// Small helper: "patterns-500" style subbench names.
	return prefix + "-" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
