package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"dpiservice/internal/controller"
	"dpiservice/internal/packet"
	"dpiservice/internal/trace"
	"dpiservice/internal/wire"
)

// wireToken resolves the session token for wire mode: an explicit
// -token wins; otherwise the controller issues one for -peer.
func wireToken(token uint64, ctlAddr, peer string) (uint64, error) {
	if token != 0 {
		return token, nil
	}
	if ctlAddr == "" {
		return 0, errors.New("wire mode needs -token or -controller")
	}
	cl, err := controller.Dial(ctlAddr)
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return cl.NewSession(ctx, peer)
}

// driveWire streams the corpus to a dpinstance over the batched-UDP
// wire transport and waits for every match report, printing throughput
// and protocol statistics. Unlike the framed-TCP path, results arrive
// keyed by the data frame's seq, so ordering is irrelevant.
//
// With traceRate > 0 every packet of 1-in-traceRate flows (picked by a
// deterministic tuple hash, so re-runs sample the same flows) is sent
// with in-band trace context and gets a send-stage span recorded
// locally; the sampled trace IDs are printed so an operator (or the
// e2e harness) can stitch them against the /trace dumps of dpinstance
// and mboxd.
func driveWire(target, peer string, token uint64, tag uint16, corpus [][]byte, nFlows, traceRate int) error {
	tr, err := wire.DialUDP(target)
	if err != nil {
		return err
	}
	conn := wire.NewConn(tr, token, peer, wire.Config{}, nil)

	var (
		results     atomic.Int64
		withMatches atomic.Int64
		reportBytes atomic.Int64
	)
	conn.OnResult(func(dataSeq uint32, report []byte) {
		results.Add(1)
		if len(report) > 0 {
			withMatches.Add(1)
			reportBytes.Add(int64(len(report)))
		}
	})
	if err := conn.Start(10 * time.Second); err != nil {
		return fmt.Errorf("wire handshake with %s: %w", target, err)
	}
	defer conn.Close()

	tuples := make([]packet.FiveTuple, nFlows)
	for i := range tuples {
		tuples[i] = packet.FiveTuple{
			Src:      packet.IP4{10, 0, byte(i >> 8), byte(i)},
			Dst:      packet.IP4{10, 0, 0, 2},
			SrcPort:  uint16(1024 + i),
			DstPort:  80,
			Protocol: packet.IPProtoTCP,
		}
	}

	// Sampling decides at flow granularity: either every packet of a
	// flow is traced or none is, so a stitched trace shows a coherent
	// packet sequence. The token seeds the hash so distinct sessions
	// sample distinct flow subsets.
	sampler := trace.NewSampler(traceRate, token)
	var tracer *trace.Tracer
	var pktIdx []uint32
	traceIDs := make(map[uint64]struct{})
	if sampler.Enabled() {
		tracer = trace.NewTracer(peer, trace.DefaultSpanCapacity)
		pktIdx = make([]uint32, nFlows)
	}

	var totalBytes int64
	var tracedPkts int
	start := time.Now()
	for i, p := range corpus {
		totalBytes += int64(len(p))
		tuple := tuples[i%nFlows]
		if sampler.Enabled() && sampler.Sampled(tuple) {
			id := sampler.TraceID(tuple)
			idx := pktIdx[i%nFlows]
			pktIdx[i%nFlows]++
			sendStart := time.Now().UnixNano()
			if _, err := conn.SendDataTraced(tag, tuple, id, idx, p); err != nil {
				return err
			}
			tracer.Record(id, idx, trace.StageSend, sendStart, time.Now().UnixNano()-sendStart)
			traceIDs[id] = struct{}{}
			tracedPkts++
			continue
		}
		if _, err := conn.SendData(tag, tuple, p); err != nil {
			return err
		}
	}
	conn.Flush()

	deadline := time.Now().Add(60 * time.Second)
	for results.Load() < int64(len(corpus)) {
		if err := conn.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("wire: %d of %d results after 60s", results.Load(), len(corpus))
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)

	st := conn.Stats()
	mbps := float64(totalBytes) * 8 / 1e6 / elapsed.Seconds()
	log.Printf("trafficgen: wire — %d packets, %.1f MB in %v — %.0f Mbps",
		len(corpus), float64(totalBytes)/1e6, elapsed.Round(time.Millisecond), mbps)
	pct := float64(int64(len(corpus))-withMatches.Load()) / float64(len(corpus)) * 100
	log.Printf("trafficgen: %.1f%% of packets had no matches; mean non-empty report %.1f B",
		pct, mean(reportBytes.Load(), int(withMatches.Load())))
	log.Printf("trafficgen: wire protocol — %d sent, %d retransmits, %d dups seen, %d acks",
		st.Sent, st.Retransmits, st.Dups, st.AcksSent)
	if sampler.Enabled() {
		ids := make([]string, 0, len(traceIDs))
		for id := range traceIDs {
			ids = append(ids, trace.IDString(id))
		}
		sort.Strings(ids)
		log.Printf("trafficgen: traced %d packets across %d flows; trace ids: %s",
			tracedPkts, len(traceIDs), strings.Join(ids, " "))
	}
	return nil
}
