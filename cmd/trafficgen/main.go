// Command trafficgen generates synthetic workloads (Section 6.2's
// trace substitutes) and either writes payloads to a file or drives a
// running dpinstance daemon over its data port, measuring end-to-end
// throughput and match-report statistics.
//
// Usage:
//
//	trafficgen -target 127.0.0.1:9191 -tag 1 [-mix http|campus|attack]
//	           [-bytes N] [-flows N] [-match 0.08] [-inject N]
//	trafficgen -connect 127.0.0.1:9292 -controller 127.0.0.1:9090 [-mix ...]
//	trafficgen -out payloads.bin [-mix ...] [-bytes N]
//	trafficgen -pcap attack.pcap -adversarial [-seed N] [-bytes N] [-flows N]
//
// With -adversarial the capture holds evasion traffic: per-flow TCP
// streams delivered as overlapping segments with conflicting data,
// bad-checksum/evil-bit/short-TTL poison insertions, retransmission
// floods, tiny-segment splits and out-of-order storms, with patterns
// planted in the genuine stream. Replay it against a reassembling
// instance to measure evasion resistance.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"strconv"
	"time"

	"dpiservice/internal/ctlproto"
	"dpiservice/internal/packet"
	"dpiservice/internal/patterns"
	"dpiservice/internal/pcap"
	"dpiservice/internal/traffic"
)

func main() {
	var (
		target  = flag.String("target", "", "dpinstance framed-TCP data address to drive")
		connect = flag.String("connect", "", "dpinstance batched-UDP wire address to drive")
		ctlAddr = flag.String("controller", "", "controller address for fetching a wire session token (wire mode)")
		peer    = flag.String("peer", "trafficgen", "peer identity announced on the wire session")
		tokStr  = flag.String("token", "", "explicit wire session token (hex/decimal; overrides -controller)")
		out     = flag.String("out", "", "write length-prefixed payloads to this file instead")
		pcapOut = flag.String("pcap", "", "write full Ethernet frames to this pcap file instead")
		replay  = flag.String("replay", "", "replay payloads from this pcap file toward -target")
		tag     = flag.Uint("tag", 1, "policy chain tag to stamp on packets")
		mix     = flag.String("mix", "http", "content mix: http, campus or attack")
		bytesN  = flag.Int("bytes", 16<<20, "total payload bytes to generate")
		flows   = flag.Int("flows", 64, "number of flows to spread packets over")
		matchFr = flag.Float64("match", 0.08, "fraction of packets with injected matches")
		injectN = flag.Int("inject", 64, "number of synthetic patterns to inject from")
		seed    = flag.Int64("seed", 1, "generator seed")
		advr    = flag.Bool("adversarial", false, "generate evasion traffic (overlap conflicts, poison, reordering); requires -pcap")
		traceRt = flag.Int("trace-rate", 0, "sample 1 in N flows for end-to-end wire tracing: sampled packets carry in-band trace context and accrue spans at every pipeline stage (0 disables; wire mode only)")
	)
	flag.Parse()
	if *advr && *pcapOut == "" {
		fmt.Fprintln(os.Stderr, "trafficgen: -adversarial requires -pcap (full frames carry the attack headers)")
		os.Exit(2)
	}
	if *replay != "" {
		if *target == "" {
			fmt.Fprintln(os.Stderr, "trafficgen: -replay requires -target")
			os.Exit(2)
		}
		if err := replayPcap(*replay, *target, uint16(*tag)); err != nil {
			log.Fatalf("trafficgen: %v", err)
		}
		return
	}
	modes := 0
	for _, m := range []string{*target, *connect, *out, *pcapOut} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "trafficgen: exactly one of -target, -connect, -out or -pcap is required")
		os.Exit(2)
	}

	var m traffic.Mix
	switch *mix {
	case "http":
		m = traffic.HTTPMix
	case "campus":
		m = traffic.CampusMix
	case "attack":
		m = traffic.AttackMix
	default:
		log.Fatalf("trafficgen: unknown mix %q", *mix)
	}
	inject := patterns.SnortLike(*injectN, *seed).Strings()
	if *advr {
		if err := writeAdvPcap(*pcapOut, m, *bytesN, *flows, *seed, inject); err != nil {
			log.Fatalf("trafficgen: %v", err)
		}
		return
	}
	gen := traffic.NewGenerator(traffic.Config{
		Seed: *seed, Mix: m, MatchFraction: *matchFr, InjectPatterns: inject,
	})
	corpus := gen.Corpus(*bytesN)

	if *out != "" {
		if err := writeCorpus(*out, corpus); err != nil {
			log.Fatalf("trafficgen: %v", err)
		}
		log.Printf("trafficgen: wrote %d payloads to %s", len(corpus), *out)
		return
	}
	if *pcapOut != "" {
		if err := writePcap(*pcapOut, corpus, *flows); err != nil {
			log.Fatalf("trafficgen: %v", err)
		}
		log.Printf("trafficgen: wrote %d frames to %s", len(corpus), *pcapOut)
		return
	}

	if *connect != "" {
		var explicit uint64
		if *tokStr != "" {
			var err error
			if explicit, err = strconv.ParseUint(*tokStr, 0, 64); err != nil {
				log.Fatalf("trafficgen: bad -token: %v", err)
			}
		}
		token, err := wireToken(explicit, *ctlAddr, *peer)
		if err != nil {
			log.Fatalf("trafficgen: %v", err)
		}
		if err := driveWire(*connect, *peer, token, uint16(*tag), corpus, *flows, *traceRt); err != nil {
			log.Fatalf("trafficgen: %v", err)
		}
		return
	}
	if err := drive(*target, uint16(*tag), corpus, *flows); err != nil {
		log.Fatalf("trafficgen: %v", err)
	}
}

// writeCorpus stores payloads as [4B len][bytes] records.
func writeCorpus(path string, corpus [][]byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	var hdr [4]byte
	for _, p := range corpus {
		binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	return w.Flush()
}

// writePcap stores full frames as a capture file, spreading packets
// over nFlows flows with sequential timestamps.
func writePcap(path string, corpus [][]byte, nFlows int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	w, err := pcap.NewWriter(bw, 0)
	if err != nil {
		return err
	}
	var fb traffic.FrameBuilder
	fb.SrcMAC = packet.MAC{2, 0, 0, 0, 0, 1}
	fb.DstMAC = packet.MAC{2, 0, 0, 0, 0, 2}
	ts := time.Unix(1700000000, 0)
	for i, p := range corpus {
		tuple := packet.FiveTuple{
			Src:      packet.IP4{10, 0, byte((i % nFlows) >> 8), byte(i % nFlows)},
			Dst:      packet.IP4{10, 0, 0, 2},
			SrcPort:  uint16(1024 + i%nFlows),
			DstPort:  80,
			Protocol: packet.IPProtoTCP,
		}
		if err := w.WritePacket(ts, fb.Build(tuple, p)); err != nil {
			return err
		}
		ts = ts.Add(time.Microsecond * 50)
	}
	return bw.Flush()
}

// writeAdvPcap stores per-flow adversarial TCP streams as a capture:
// each flow is a SYN-anchored stream with patterns planted in its
// genuine content, delivered through the full evasion schedule
// (conflicting overlaps, checksum/TTL/evil-bit poison, duplication,
// reordering, gap floods) and closed by a FIN.
func writeAdvPcap(path string, m traffic.Mix, totalBytes, nFlows int, seed int64, inject []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	w, err := pcap.NewWriter(bw, 0)
	if err != nil {
		return err
	}
	var fb traffic.FrameBuilder
	fb.SrcMAC = packet.MAC{2, 0, 0, 0, 0, 1}
	fb.DstMAC = packet.MAC{2, 0, 0, 0, 0, 2}
	rng := rand.New(rand.NewSource(seed))
	gen := traffic.NewGenerator(traffic.Config{Seed: seed, Mix: m})
	per := totalBytes / nFlows
	if per < 1024 {
		per = 1024
	}
	ts := time.Unix(1700000000, 0)
	frames, sites, ambig, poison := 0, 0, 0, 0
	for i := 0; i < nFlows; i++ {
		tuple := packet.FiveTuple{
			Src:      packet.IP4{10, 0, byte(i >> 8), byte(i)},
			Dst:      packet.IP4{10, 0, 0, 2},
			SrcPort:  uint16(1024 + i),
			DstPort:  80,
			Protocol: packet.IPProtoTCP,
		}
		ref := gen.PayloadN(per)
		sites += len(traffic.Plant(rng, ref, inject, per/512+1))
		adv := traffic.Adversarial(rng, ref, traffic.AdvConfig{Fin: true})
		isn := rng.Uint32()
		if err := w.WritePacket(ts, fb.BuildSyn(tuple, isn)); err != nil {
			return err
		}
		ts = ts.Add(50 * time.Microsecond)
		frames++
		for _, seg := range adv.Segments {
			o := traffic.AdvFrameOpts{Checksum: traffic.ChecksumGood, Fin: seg.Fin}
			switch {
			case seg.BadChecksum:
				o.Checksum = traffic.ChecksumBad
			case seg.Evil:
				o.Evil = true
			case seg.ShortTTL:
				o.TTL = 2
			}
			if err := w.WritePacket(ts, fb.BuildAdv(tuple, isn+1+uint32(seg.Offset), seg.Data, o)); err != nil {
				return err
			}
			ts = ts.Add(50 * time.Microsecond)
			frames++
		}
		ambig += len(adv.Ambiguous)
		poison += len(adv.Poisoned)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	log.Printf("trafficgen: wrote %d adversarial frames (%d flows) to %s", frames, nFlows, path)
	log.Printf("trafficgen: %d planted pattern sites, %d ambiguous ranges, %d poisoned ranges", sites, ambig, poison)
	return nil
}

// replayPcap reads a capture and drives the instance with the frames'
// actual tuples and payloads.
func replayPcap(path, target string, tag uint16) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(bufio.NewReader(f))
	if err != nil {
		return err
	}
	conn, err := net.Dial("tcp", target)
	if err != nil {
		return err
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 1<<16)
	br := bufio.NewReaderSize(conn, 1<<16)

	type pkt struct {
		tuple   packet.FiveTuple
		payload []byte
	}
	var pkts []pkt
	var scratch []byte
	var sum packet.Summary
	skipped := 0
	for {
		frame, _, err := r.Next(scratch)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		scratch = frame
		if packet.Summarize(frame, &sum) != nil || sum.IsReport || len(sum.Payload) == 0 {
			skipped++
			continue
		}
		pl := make([]byte, len(sum.Payload))
		copy(pl, sum.Payload)
		pkts = append(pkts, pkt{tuple: sum.Tuple, payload: pl})
	}
	log.Printf("trafficgen: replaying %d packets (%d skipped) from %s", len(pkts), skipped, path)

	errc := make(chan error, 1)
	go func() {
		for _, p := range pkts {
			if err := ctlproto.WriteDataPacket(bw, tag, p.tuple, p.payload); err != nil {
				errc <- err
				return
			}
		}
		errc <- bw.Flush()
	}()
	var total int64
	withMatches := 0
	var buf []byte
	start := time.Now()
	for _, p := range pkts {
		total += int64(len(p.payload))
		enc, err := ctlproto.ReadResultFrame(br, buf)
		if err != nil {
			return err
		}
		buf = enc
		if enc != nil {
			withMatches++
		}
	}
	if err := <-errc; err != nil {
		return err
	}
	elapsed := time.Since(start)
	log.Printf("trafficgen: %.1f MB in %v — %.0f Mbps, %d packets with matches",
		float64(total)/1e6, elapsed.Round(time.Millisecond),
		float64(total)*8/1e6/elapsed.Seconds(), withMatches)
	return nil
}

// drive streams the corpus to a dpinstance and reads back reports,
// printing throughput and match statistics.
func drive(target string, tag uint16, corpus [][]byte, nFlows int) error {
	conn, err := net.Dial("tcp", target)
	if err != nil {
		return err
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 1<<16)
	br := bufio.NewReaderSize(conn, 1<<16)

	tuples := make([]packet.FiveTuple, nFlows)
	for i := range tuples {
		tuples[i] = packet.FiveTuple{
			Src:      packet.IP4{10, 0, byte(i >> 8), byte(i)},
			Dst:      packet.IP4{10, 0, 0, 2},
			SrcPort:  uint16(1024 + i),
			DstPort:  80,
			Protocol: packet.IPProtoTCP,
		}
	}

	// Pipeline: writer goroutine streams packets while we read
	// results — the daemon answers in order.
	errc := make(chan error, 1)
	go func() {
		for i, p := range corpus {
			if err := ctlproto.WriteDataPacket(bw, tag, tuples[i%nFlows], p); err != nil {
				errc <- err
				return
			}
		}
		errc <- bw.Flush()
	}()

	var (
		totalBytes  int64
		withMatches int
		reportBytes int64
		rep         packet.Report
		buf         []byte
	)
	start := time.Now()
	for _, p := range corpus {
		totalBytes += int64(len(p))
		enc, err := ctlproto.ReadResultFrame(br, buf)
		if err != nil {
			return err
		}
		buf = enc
		if enc != nil {
			withMatches++
			reportBytes += int64(len(enc))
			if _, err := packet.DecodeReport(enc, &rep); err != nil {
				return err
			}
		}
	}
	if err := <-errc; err != nil {
		return err
	}
	elapsed := time.Since(start)

	mbps := float64(totalBytes) * 8 / 1e6 / elapsed.Seconds()
	log.Printf("trafficgen: %d packets, %.1f MB in %v — %.0f Mbps",
		len(corpus), float64(totalBytes)/1e6, elapsed.Round(time.Millisecond), mbps)
	pct := float64(len(corpus)-withMatches) / float64(len(corpus)) * 100
	log.Printf("trafficgen: %.1f%% of packets had no matches; mean non-empty report %.1f B",
		pct, mean(reportBytes, withMatches))
	return nil
}

func mean(total int64, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}
