// Command mboxd registers a middlebox with the DPI controller and
// pushes its pattern set (Section 4.1): either parsed from a Snort-rule
// or ClamAV-signature file, or generated synthetically. With -chain it
// also reports a policy chain ending at this middlebox, acting as a
// minimal TSA.
//
// Usage:
//
//	mboxd -id ids-1 -type ids [-rules file.rules | -clamav file.ndb | -synthetic N]
//	      [-stateful] [-readonly] [-stop N] [-inherit other-mbox]
//	      [-on-dpi-loss fail-open|fail-closed] [-chain mbox1,mbox2,...]
//	      [-listen addr] [-debug-addr addr]
//
// With -listen, mboxd stays running as a wire-transport verdict
// consumer: DPI instances connect over batched UDP and push every
// non-empty match report for this middlebox's chains, authenticated by
// controller-issued session tokens.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"dpiservice/internal/controller"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/patterns"
)

func main() {
	var (
		ctlAddr   = flag.String("controller", "127.0.0.1:9090", "DPI controller address")
		id        = flag.String("id", "", "unique middlebox identifier (required)")
		typ       = flag.String("type", "", "middlebox type; same-type middleboxes share a pattern set")
		rulesFile = flag.String("rules", "", "Snort-format rules file")
		clamFile  = flag.String("clamav", "", "ClamAV .ndb signature file")
		synthetic = flag.Int("synthetic", 0, "generate N synthetic Snort-like patterns instead of a file")
		seed      = flag.Int64("seed", 1, "seed for -synthetic")
		stateful  = flag.Bool("stateful", false, "request cross-packet scan state")
		readonly  = flag.Bool("readonly", false, "results only, no packets (e.g. an IDS)")
		stopAfter = flag.Int("stop", 0, "stopping condition in payload bytes (0 = unlimited)")
		inherit   = flag.String("inherit", "", "inherit the pattern set of this registered middlebox")
		onLoss    = flag.String("on-dpi-loss", "", "degraded mode when DPI results stop arriving: fail-open (pass unscanned) or fail-closed (drop); default: fail-open if -readonly, else fail-closed")
		chain     = flag.String("chain", "", "comma-separated middlebox IDs to report as a policy chain")
		listen    = flag.String("listen", "", "stay running as a wire verdict consumer on this UDP address (empty: register and exit)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /healthz on this address (empty disables)")
	)
	flag.Parse()
	if *id == "" {
		fmt.Fprintln(os.Stderr, "mboxd: -id is required")
		os.Exit(2)
	}
	switch *onLoss {
	case "", ctlproto.FailOpen, ctlproto.FailClosed:
	default:
		fmt.Fprintf(os.Stderr, "mboxd: -on-dpi-loss must be %q or %q\n", ctlproto.FailOpen, ctlproto.FailClosed)
		os.Exit(2)
	}

	set, err := loadSet(*id, *rulesFile, *clamFile, *synthetic, *seed)
	if err != nil {
		log.Fatalf("mboxd: %v", err)
	}

	cl, err := controller.Dial(*ctlAddr)
	if err != nil {
		log.Fatalf("mboxd: controller: %v", err)
	}
	defer cl.Close()

	// Every control call is bounded: a wedged controller must fail the
	// daemon loudly, not hang it.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ack, err := cl.RegisterFull(ctx, ctlproto.Register{
		MboxID: *id, Name: *id, Type: *typ,
		Stateful: *stateful, ReadOnly: *readonly, StopAfter: *stopAfter,
		InheritFrom: *inherit, FailMode: *onLoss,
	})
	if err != nil {
		log.Fatalf("mboxd: register: %v", err)
	}
	log.Printf("mboxd %s: registered, pattern set %d", *id, ack.Set)

	if set != nil {
		var defs []ctlproto.PatternDef
		for _, p := range set.Patterns {
			defs = append(defs, ctlproto.PatternDef{RuleID: p.ID, Content: []byte(p.Content)})
		}
		for _, r := range set.Regexes {
			defs = append(defs, ctlproto.PatternDef{RuleID: r.ID, Regex: r.Expr})
		}
		if len(defs) > 0 {
			if err := cl.AddPatterns(ctx, *id, defs); err != nil {
				log.Fatalf("mboxd: add patterns: %v", err)
			}
			raw, comp := set.RawSize(), 0
			if c, err := set.CompressedSize(); err == nil {
				comp = c
			}
			log.Printf("mboxd %s: pushed %d patterns, %d regexes (%d B raw, %d B compressed)",
				*id, len(set.Patterns), len(set.Regexes), raw, comp)
		}
	}

	if *chain != "" {
		members := strings.Split(*chain, ",")
		defs, err := cl.ReportChains(ctx, [][]string{members})
		if err != nil {
			log.Fatalf("mboxd: chain: %v", err)
		}
		log.Printf("mboxd %s: chain %v assigned tag %d", *id, members, defs[0].Tag)
	}

	if *listen != "" {
		if err := serveVerdicts(*id, *listen, *debugAddr, ack.WireKey); err != nil {
			log.Fatalf("mboxd: %v", err)
		}
	}
}

// loadSet builds the middlebox's pattern set from the selected source.
func loadSet(name, rulesFile, clamFile string, synthetic int, seed int64) (*patterns.Set, error) {
	sources := 0
	for _, on := range []bool{rulesFile != "", clamFile != "", synthetic > 0} {
		if on {
			sources++
		}
	}
	if sources > 1 {
		return nil, fmt.Errorf("choose one of -rules, -clamav, -synthetic")
	}
	switch {
	case rulesFile != "":
		f, err := os.Open(rulesFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rules, err := patterns.ParseSnortRules(f)
		if err != nil {
			return nil, err
		}
		set := patterns.SetFromSnortRules(name, rules, 4)
		return set, nil
	case clamFile != "":
		f, err := os.Open(clamFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sigs, err := patterns.ParseClamAVSignatures(f)
		if err != nil {
			return nil, err
		}
		return patterns.SetFromClamAVSignatures(name, sigs, 8), nil
	case synthetic > 0:
		return patterns.SnortLike(synthetic, seed), nil
	default:
		return nil, nil
	}
}
