package main

import (
	"log"
	"os"
	"os/signal"
	"syscall"

	"dpiservice/internal/obs"
	"dpiservice/internal/packet"
	"dpiservice/internal/wire"
)

// serveVerdicts runs the middlebox's wire-transport verdict consumer
// until SIGINT/SIGTERM: DPI instances connect with controller-issued
// tokens (validated against the cluster key from RegisterAck) and push
// every non-empty match report for this middlebox's chains.
func serveVerdicts(id, listen, debugAddr string, key uint64) error {
	reg := obs.NewRegistry()
	met := wire.NewMetrics(reg)
	verdicts := reg.Counter("mbox.verdicts")
	verdictBytes := reg.Counter("mbox.verdict_bytes")
	matches := reg.Counter("mbox.matches")
	badReports := reg.Counter("mbox.bad_reports")

	tr, err := wire.ListenUDP(listen)
	if err != nil {
		return err
	}
	srv := wire.NewServer(tr, key, wire.Config{}, met)
	srv.SetLogf(log.Printf)
	// Handlers run on the server's single receive goroutine; the decode
	// scratch is reused across verdicts.
	var rep packet.Report
	srv.OnVerdict(func(s *wire.Session, tag uint16, tuple packet.FiveTuple, report []byte) {
		verdicts.Inc()
		verdictBytes.Add(uint64(len(report)))
		if _, err := packet.DecodeReport(report, &rep); err != nil {
			badReports.Inc()
			return
		}
		matches.Add(uint64(len(rep.Sections)))
	})
	srv.Start()
	defer srv.Close()
	log.Printf("mboxd %s: verdict consumer on %s", id, srv.LocalAddr().String())

	if debugAddr != "" {
		mux := obs.NewDebugMux(reg, nil)
		dbg, err := obs.StartDebugServer(debugAddr, mux)
		if err != nil {
			return err
		}
		defer dbg.Close()
		log.Printf("mboxd %s: debug endpoints on http://%s", id, dbg.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("mboxd %s: done — %d verdicts, %d matches", id, verdicts.Value(), matches.Value())
	return nil
}
