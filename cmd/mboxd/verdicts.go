package main

import (
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpiservice/internal/obs"
	"dpiservice/internal/packet"
	"dpiservice/internal/trace"
	"dpiservice/internal/wire"
)

// serveVerdicts runs the middlebox's wire-transport verdict consumer
// until SIGINT/SIGTERM: DPI instances connect with controller-issued
// tokens (validated against the cluster key from RegisterAck) and push
// every non-empty match report for this middlebox's chains.
func serveVerdicts(id, listen, debugAddr string, key uint64) error {
	reg := obs.NewRegistry()
	met := wire.NewMetrics(reg)
	verdicts := reg.Counter("mbox.verdicts")
	verdictBytes := reg.Counter("mbox.verdict_bytes")
	matches := reg.Counter("mbox.matches")
	badReports := reg.Counter("mbox.bad_reports")

	// The consume span closes each sampled packet's trace: verdicts
	// whose frames carry FlagTrace record their handling time here,
	// stitched to the upstream spans by trace ID at scrape time.
	tracer := trace.NewTracer("mbox-"+id, trace.DefaultSpanCapacity)
	fl := trace.NewFlight("mbox-"+id, trace.DefaultFlightCapacity)
	clk := trace.StartClock(0)
	defer clk.Stop()
	fl.SetClock(clk)
	met.SetFlight(fl)

	tr, err := wire.ListenUDP(listen)
	if err != nil {
		return err
	}
	srv := wire.NewServer(tr, key, wire.Config{}, met)
	srv.SetLogf(log.Printf)
	// Handlers run on the server's single receive goroutine; the decode
	// scratch is reused across verdicts.
	var rep packet.Report
	srv.OnVerdict(func(s *wire.Session, tag uint16, tuple packet.FiveTuple, report []byte) {
		traceID, pktIdx, traced := s.Trace()
		var start int64
		if traced {
			start = time.Now().UnixNano()
		}
		verdicts.Inc()
		verdictBytes.Add(uint64(len(report)))
		if _, err := packet.DecodeReport(report, &rep); err != nil {
			badReports.Inc()
			return
		}
		matches.Add(uint64(len(rep.Sections)))
		if traced {
			tracer.Record(traceID, pktIdx, trace.StageConsume, start, time.Now().UnixNano()-start)
		}
	})
	srv.Start()
	defer srv.Close()
	log.Printf("mboxd %s: verdict consumer on %s", id, srv.LocalAddr().String())

	if debugAddr != "" {
		mux := obs.NewDebugMux(reg, obs.Health{
			Service: "mboxd",
			Details: func() map[string]any {
				return map[string]any{
					"id":       id,
					"verdicts": verdicts.Value(),
				}
			},
		})
		mux.Handle("/trace", tracer.Handler())
		mux.Handle("/flight", fl.Handler())
		dbg, err := obs.StartDebugServer(debugAddr, mux)
		if err != nil {
			return err
		}
		defer dbg.Close()
		log.Printf("mboxd %s: debug endpoints on http://%s", id, dbg.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("mboxd %s: done — %d verdicts, %d matches", id, verdicts.Value(), matches.Value())
	return nil
}
