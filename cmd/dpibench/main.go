// Command dpibench regenerates every table and figure of the paper's
// evaluation (Section 6) at full parameter ranges and prints them in
// the paper's layout. See EXPERIMENTS.md for paper-vs-measured values.
//
// Usage:
//
//	dpibench [flags] <experiment> [experiment ...]
//
// Experiments: fig8, table2, fig9a, fig9b, fig10a, fig10b, fig11,
// slowdown, parallel, prefilter, ablations, all. The -adversarial flag
// switches corpus construction to the attack mix (worst case for the
// two-stage prefiltered matcher).
//
// With -json, the raw measurements of the record-collectable
// experiments (table2, fig9a, fig9b, parallel, prefilter) are written
// as a BENCH_*.json report (schema dpibench/v1: experiment, pattern
// count, packets, ns/op, MB/s, Mbps, allocs/op, matches, and the
// engine's metric snapshot per record). With -baseline, throughput is
// compared against a previously committed report and the process exits
// nonzero when any record regressed by more than -regress percent —
// the CI benchmark gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"dpiservice/internal/bench"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "small pattern sets and corpus (seconds instead of minutes)")
		corpus   = flag.Int("corpus", 0, "corpus size in bytes per measurement (default 4 MiB)")
		repeat   = flag.Int("repeat", 0, "corpus passes per measurement (default 1)")
		seed     = flag.Int64("seed", 1, "generator seed")
		trials   = flag.Int("trials", 1, "best-of-`N` runs per record in collection mode (damps machine noise)")
		jsonOut  = flag.String("json", "", "write a BENCH_*.json report of the collectable experiments to this `file`")
		baseline = flag.String("baseline", "", "compare throughput against this committed BENCH_*.json `file`; exit 1 on regression")
		regress  = flag.Float64("regress", 15, "regression threshold in `percent` for -baseline")
		advers   = flag.Bool("adversarial", false, "use the attack-mix corpus (high prefilter hit rate) for all experiments")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dpibench [flags] <fig8|table2|fig9a|fig9b|fig10a|fig10b|fig11|slowdown|parallel|prefilter|ablations|wire|trace|all> ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	opt := bench.Options{Quick: *quick, CorpusBytes: *corpus, Repeat: *repeat, Seed: *seed, Trials: *trials, Adversarial: *advers}

	exps := map[string]func(bench.Options) error{
		"fig8":      runFig8,
		"table2":    runTable2,
		"fig9a":     runFig9a,
		"fig9b":     runFig9b,
		"fig10a":    runFig10a,
		"fig10b":    runFig10b,
		"fig11":     runFig11,
		"slowdown":  runSlowdown,
		"parallel":  runParallel,
		"prefilter": runPrefilter,
		"ablations": runAblations,
		"wire":      runWire,
		"trace":     runTrace,
	}
	var names []string
	for _, name := range flag.Args() {
		if name == "all" {
			names = append(names, "slowdown", "fig8", "parallel", "table2", "fig9a", "fig9b", "fig10a", "fig10b", "fig11", "prefilter", "ablations")
			continue
		}
		names = append(names, name)
	}
	collectable := map[string]bool{}
	for _, name := range bench.CollectableExperiments() {
		collectable[name] = true
	}
	collecting := *jsonOut != "" || *baseline != ""

	var toCollect []string
	for _, name := range names {
		fn, ok := exps[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "dpibench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		// In collection mode the collectable experiments run once
		// through Collect (below) instead of the pretty printer, so the
		// measurements in the report are the ones actually taken.
		if collecting && collectable[name] {
			toCollect = append(toCollect, name)
			continue
		}
		if err := fn(opt); err != nil {
			fmt.Fprintf(os.Stderr, "dpibench %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if !collecting {
		return
	}
	if len(toCollect) == 0 {
		fmt.Fprintf(os.Stderr, "dpibench: -json/-baseline need at least one collectable experiment (%v)\n",
			bench.CollectableExperiments())
		os.Exit(2)
	}
	rep, err := bench.Collect(toCollect, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpibench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("== Benchmark records (%v) ==\n", toCollect)
	fmt.Printf("%-10s %-24s %10s %12s %12s %12s\n", "experiment", "name", "patterns", "ns/op", "MB/s", "Mbps")
	for _, r := range rep.Records {
		fmt.Printf("%-10s %-24s %10d %12.0f %12.1f %12.0f\n", r.Experiment, r.Name, r.Patterns, r.NsPerOp, r.MBps, r.Mbps)
	}
	if *jsonOut != "" {
		if err := rep.WriteFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "dpibench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d records)\n", *jsonOut, len(rep.Records))
	}
	if *baseline != "" {
		base, err := bench.LoadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpibench: %v\n", err)
			os.Exit(1)
		}
		cmp := bench.Compare(base, rep)
		fmt.Printf("\n== Regression check vs %s (threshold %.0f%%) ==\n", *baseline, *regress)
		fmt.Printf("%-10s %-24s %14s %14s %9s\n", "experiment", "name", "baseline Mbps", "current Mbps", "delta")
		for _, c := range cmp {
			fmt.Printf("%-10s %-24s %14.0f %14.0f %+8.1f%%\n", c.Experiment, c.Name, c.BaselineMbps, c.CurrentMbps, c.DeltaPct)
		}
		if len(cmp) == 0 {
			fmt.Println("no overlapping records to compare")
		}
		if reg := bench.Regressed(cmp, *regress); len(reg) > 0 {
			fmt.Fprintf(os.Stderr, "dpibench: %d record(s) regressed more than %.0f%% vs %s\n", len(reg), *regress, *baseline)
			os.Exit(1)
		}
		fmt.Println("no regressions beyond threshold")
	}
}

func runWire(opt bench.Options) error {
	fmt.Println("== Wire transport: end-to-end data plane over loopback UDP vs netsim ==")
	rows, err := bench.Wire(opt)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatWire(rows))
	fmt.Println()
	return nil
}

func runTrace(opt bench.Options) error {
	fmt.Println("== Trace: per-stage scan latency percentiles from a fully-traced run ==")
	rows, err := bench.TraceStages(opt)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTraceStages(rows))
	fmt.Println()
	return nil
}

func runFig8(opt bench.Options) error {
	fmt.Println("== Figure 8: AC throughput vs number of patterns (virtualization effect) ==")
	rows, err := bench.Fig8(opt)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %18s %14s %18s\n", "patterns", "standalone[Mbps]", "1 VM [Mbps]", "4 VMs avg [Mbps]")
	for _, r := range rows {
		fmt.Printf("%10d %18.0f %14.0f %18.0f\n", r.Patterns, r.StandaloneMbps, r.OneVMMbps, r.FourVMAvgMbps)
	}
	fmt.Println()
	return nil
}

func runTable2(opt bench.Options) error {
	fmt.Println("== Table 2: separate vs combined pattern sets ==")
	rows, err := bench.Table2(opt)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %10s %10s %12s\n", "Sets", "Patterns", "Space", "Throughput")
	for _, r := range rows {
		fmt.Printf("%-16s %10d %8.1fMB %8.0fMbps\n", r.Sets, r.Patterns, r.SpaceMB, r.Mbps)
	}
	if len(rows) == 3 && rows[0].Mbps > 0 {
		fmt.Printf("combined vs separate: %.0f%% of Snort1's throughput\n\n", rows[2].Mbps/rows[0].Mbps*100)
	}
	return nil
}

func runParallel(opt bench.Options) error {
	fmt.Println("== Parallel Inspect: one sharded instance, throughput vs scan workers ==")
	rows, err := bench.ParallelScaling(opt)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatParallel(rows))
	fmt.Println()
	return nil
}

func runPrefilter(opt bench.Options) error {
	fmt.Println("== Prefilter: plain AC vs two-stage prefiltered matcher ==")
	rows, err := bench.Prefilter(opt)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatPrefilter(rows))
	fmt.Println()
	return nil
}

func runFig9a(opt bench.Options) error {
	fmt.Println("== Figure 9(a): two pipelined middleboxes vs two virtual DPI instances (Snort1+Snort2) ==")
	rows, err := bench.Fig9a(opt)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatFig9(rows))
	fmt.Println()
	return nil
}

func runFig9b(opt bench.Options) error {
	fmt.Println("== Figure 9(b): two pipelined middleboxes vs two virtual DPI instances (Snort+ClamAV) ==")
	rows, err := bench.Fig9b(opt)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatFig9(rows))
	fmt.Println()
	return nil
}

func runFig10a(opt bench.Options) error {
	res, err := bench.Fig10a(opt)
	if err != nil {
		return err
	}
	printFig10("Figure 10(a)", res)
	return nil
}

func runFig10b(opt bench.Options) error {
	res, err := bench.Fig10b(opt)
	if err != nil {
		return err
	}
	printFig10("Figure 10(b)", res)
	return nil
}

func printFig10(title string, r *bench.Fig10Result) {
	fmt.Printf("== %s: achievable throughput regions (%s vs %s) ==\n", title, r.NameA, r.NameB)
	fmt.Printf("separate middleboxes (rectangle): x <= %.0f Mbps, y <= %.0f Mbps\n", r.RectAMbps, r.RectBMbps)
	fmt.Printf("virtual DPI (triangle):           x + y <= %.0f Mbps (one machine: %.0f Mbps)\n",
		r.TriangleBudget, r.CombinedMbps)
	fmt.Printf("capacity borrowable by %s when %s is idle: %+.0f%%\n", r.NameA, r.NameB, r.BorrowablePctA())
	fmt.Printf("capacity borrowable by %s when %s is idle: %+.0f%%\n", r.NameB, r.NameA, r.BorrowablePctB())
	// Region boundary samples for plotting.
	fmt.Printf("%12s %14s %14s\n", "x [Mbps]", "rect y", "triangle y")
	steps := 5
	for i := 0; i <= steps; i++ {
		x := r.TriangleBudget * float64(i) / float64(steps)
		rectY := r.RectBMbps
		if x > r.RectAMbps {
			rectY = 0
		}
		triY := r.TriangleBudget - x
		fmt.Printf("%12.0f %14.0f %14.0f\n", x, rectY, triY)
	}
	fmt.Println()
}

func runFig11(opt bench.Options) error {
	fmt.Println("== Figure 11: CDF of non-empty match report sizes ==")
	res, err := bench.Fig11(opt)
	if err != nil {
		return err
	}
	fmt.Printf("packets: %d, no-match: %.1f%%, mean report: %.1f B, p50/p90/p99: %d/%d/%d B\n",
		res.Packets, res.PctNoMatch, res.MeanBytes, res.P50, res.P90, res.P99)
	fmt.Printf("%14s %12s\n", "size [bytes]", "cum %")
	step := len(res.CDF)/16 + 1
	for i := 0; i < len(res.CDF); i += step {
		fmt.Printf("%14d %11.1f%%\n", res.CDF[i].SizeBytes, res.CDF[i].CumPct)
	}
	if len(res.CDF) > 0 {
		last := res.CDF[len(res.CDF)-1]
		fmt.Printf("%14d %11.1f%%\n", last.SizeBytes, last.CumPct)
	}
	fmt.Println()
	return nil
}

func runSlowdown(opt bench.Options) error {
	fmt.Println("== Section 1 footnote: DPI slowdown inside a middlebox ==")
	res, err := bench.Slowdown(opt)
	if err != nil {
		return err
	}
	fmt.Printf("scan per packet:    %8.0f ns\n", res.ScanNsPerPkt)
	fmt.Printf("consume per packet: %8.0f ns\n", res.ConsumeNsPerPkt)
	fmt.Printf("slowdown factor:    %8.1fx (paper: >= 2.9x)\n\n", res.Factor)
	return nil
}

func runAblations(opt bench.Options) error {
	fmt.Println("== Ablation: matcher representations ==")
	mrows, err := bench.AblationMatchers(opt)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %12s %10s\n", "matcher", "Mbps", "space")
	for _, r := range mrows {
		fmt.Printf("%-12s %12.0f %8.1fMB\n", r.Matcher, r.Mbps, r.SpaceMB)
	}

	fmt.Println("\n== Ablation: per-state middlebox bitmap filtering ==")
	brows, err := bench.AblationBitmap(opt)
	if err != nil {
		return err
	}
	fmt.Printf("%12s %12s %12s\n", "active sets", "Mbps", "matches")
	for _, r := range brows {
		fmt.Printf("%12d %12.0f %12d\n", r.ActiveSets, r.Mbps, r.Matches)
	}

	fmt.Println("\n== Ablation: instance automaton kind (regular vs MCA2-dedicated) ==")
	krows, err := bench.AblationEngineKinds(opt)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %12s %10s\n", "kind", "Mbps", "space")
	for _, r := range krows {
		fmt.Printf("%-12s %12.0f %8.1fMB\n", r.Kind, r.Mbps, r.SpaceMB)
	}
	fmt.Println()
	return nil
}
