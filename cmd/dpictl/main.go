// Command dpictl runs the DPI controller daemon (Section 4.1): it
// accepts middlebox registrations, pattern updates, policy chains from
// the TSA, instance hellos and telemetry on a TCP control port.
//
// Usage:
//
//	dpictl [-listen addr] [-debug-addr addr]
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"dpiservice/internal/controller"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9090", "control-plane listen address")
	stateFile := flag.String("state", "", "load/save controller state at this path")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /instances and /debug/pprof on this address (empty disables)")
	flag.Parse()

	reg := obs.NewRegistry()
	ctlproto.EnableMetrics(reg)
	ctl := controller.NewWithMetrics(reg)
	if *stateFile != "" {
		if f, err := os.Open(*stateFile); err == nil {
			err := ctl.LoadState(f)
			f.Close()
			if err != nil {
				log.Fatalf("dpictl: load state: %v", err)
			}
			log.Printf("dpictl: restored state from %s (%d chains)", *stateFile, len(ctl.ChainTags()))
		} else if !os.IsNotExist(err) {
			log.Fatalf("dpictl: open state: %v", err)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("dpictl: listen: %v", err)
	}
	srv := controller.Serve(ctl, ln, log.Printf)
	log.Printf("dpictl: controller listening on %s", srv.Addr())

	if *debugAddr != "" {
		mux := obs.NewDebugMux(reg, nil)
		// /instances renders the controller's per-instance load view —
		// the data the MCA² stress monitor works from.
		mux.HandleFunc("/instances", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(ctl.TelemetrySnapshots())
		})
		dbg, err := obs.StartDebugServer(*debugAddr, mux)
		if err != nil {
			log.Fatalf("dpictl: debug listen: %v", err)
		}
		defer dbg.Close()
		log.Printf("dpictl: debug endpoints on http://%s", dbg.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("dpictl: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("dpictl: close: %v", err)
	}
	if *stateFile != "" {
		if err := saveState(ctl, *stateFile); err != nil {
			log.Printf("dpictl: save state: %v", err)
		} else {
			log.Printf("dpictl: state saved to %s", *stateFile)
		}
	}
}

// saveState writes the snapshot atomically (temp file + rename).
func saveState(ctl *controller.Controller, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := ctl.SaveState(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
