// Command dpictl runs the DPI controller daemon (Section 4.1): it
// accepts middlebox registrations, pattern updates, policy chains from
// the TSA, instance hellos, lease renewals and telemetry on a TCP
// control port, and fails chains over from dead instances to survivors.
//
// Usage:
//
//	dpictl [-listen addr] [-debug-addr addr] [-lease-ttl d] [-lease-sweep d]
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpiservice/internal/controller"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/obs"
	"dpiservice/internal/trace"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9090", "control-plane listen address")
	stateFile := flag.String("state", "", "load/save controller state at this path")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /instances and /debug/pprof on this address (empty disables)")
	leaseTTL := flag.Duration("lease-ttl", controller.DefaultLeaseConfig.TTL,
		"instance lease duration: silent instances go suspect after one TTL and dead (failed over) after two")
	leaseSweep := flag.Duration("lease-sweep", 0,
		"lease sweep interval (0 = TTL/3): how often instance health is re-evaluated")
	flag.Parse()

	reg := obs.NewRegistry()
	ctlproto.EnableMetrics(reg)
	ctl := controller.NewWithMetrics(reg)
	if *stateFile != "" {
		if err := ctl.LoadStateFile(*stateFile); err == nil {
			log.Printf("dpictl: restored state from %s (%d chains)", *stateFile, len(ctl.ChainTags()))
		} else if !os.IsNotExist(err) {
			log.Fatalf("dpictl: load state: %v", err)
		}
	}

	// The controller's flight recorder captures lease transitions and
	// failover plans so a post-mortem /flight dump shows the failure
	// history even after logs rotate.
	fl := trace.NewFlight("ctl", trace.DefaultFlightCapacity)
	clk := trace.StartClock(0)
	defer clk.Stop()
	fl.SetClock(clk)
	ctl.SetFlight(fl)

	ctl.ConfigureLeases(controller.LeaseConfig{TTL: *leaseTTL})
	ctl.OnFailover(func(f controller.Failover) {
		// The TSA polls /instances and executes the re-steer; the log is
		// the operator's record of the event.
		log.Printf("dpictl: instance %s dead; reassigned %v, unassigned %v",
			f.Dead, f.Reassigned, f.Unassigned)
	})
	sweep := *leaseSweep
	if sweep <= 0 {
		sweep = *leaseTTL / 3
	}
	if sweep < time.Second {
		sweep = time.Second
	}
	stopMonitor := ctl.StartLeaseMonitor(sweep)
	defer stopMonitor()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("dpictl: listen: %v", err)
	}
	srv := controller.Serve(ctl, ln, log.Printf)
	log.Printf("dpictl: controller listening on %s (lease ttl %v, sweep %v)", srv.Addr(), *leaseTTL, sweep)

	if *debugAddr != "" {
		mux := obs.NewDebugMux(reg, obs.Health{
			Service: "dpictl",
			Details: func() map[string]any {
				return map[string]any{"leases": ctl.LeaseSummary()}
			},
		})
		mux.Handle("/flight", fl.Handler())
		// /instances renders the controller's per-instance load and
		// health view — the data the MCA² stress monitor and failover
		// tooling work from.
		mux.HandleFunc("/instances", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(ctl.TelemetrySnapshots())
		})
		dbg, err := obs.StartDebugServer(*debugAddr, mux)
		if err != nil {
			log.Fatalf("dpictl: debug listen: %v", err)
		}
		defer dbg.Close()
		log.Printf("dpictl: debug endpoints on http://%s", dbg.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("dpictl: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("dpictl: close: %v", err)
	}
	if *stateFile != "" {
		if err := ctl.SaveStateFile(*stateFile); err != nil {
			log.Printf("dpictl: save state: %v", err)
		} else {
			log.Printf("dpictl: state saved to %s", *stateFile)
		}
	}
}
