// Command dpilint runs the data-plane invariant checks of internal/lint
// over the module: hot-path purity, lock discipline, atomic-field
// hygiene, and library API hygiene. It exits non-zero when any check
// fires, so CI can gate on it:
//
//	go run ./cmd/dpilint ./...
//
// The -dir flag instead analyzes one bare directory as a single package
// (used to demonstrate the checker against a violation fixture):
//
//	go run ./cmd/dpilint -dir internal/lint/testdata/src/hotpath
package main

import (
	"flag"
	"fmt"
	"os"

	"dpiservice/internal/lint"
)

func main() {
	dir := flag.String("dir", "", "analyze a single directory as one package instead of module patterns")
	flag.Parse()

	var (
		mod *lint.Module
		err error
	)
	if *dir != "" {
		mod, err = lint.LoadDir(*dir)
	} else {
		mod, err = lint.LoadModule(".", flag.Args()...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpilint:", err)
		os.Exit(2)
	}
	diags := lint.Run(mod)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dpilint: %d issue(s) in %d package(s)\n", len(diags), len(mod.Pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dpilint: %d package(s) clean\n", len(mod.Pkgs))
}
