// Command dpilint runs the data-plane invariant checks of internal/lint
// over the module: hot-path purity, lock discipline, lock-order/deadlock
// analysis, goroutine lifecycle, atomic-field hygiene, and library API
// hygiene. It exits non-zero when any check fires, so CI can gate on it:
//
//	go run ./cmd/dpilint ./...
//
// The -escape flag adds (or, with -static=false, isolates) the static
// zero-allocation proof: the //dpi:hotpath-reachable packages are
// recompiled with -gcflags=-m and any heap allocation the compiler's
// escape analysis reports inside reachable code fails the run. CI runs
// it as its own job, sharing the module load logic but not the job:
//
//	go run ./cmd/dpilint -escape -static=false ./...
//
// The -json flag emits machine-readable diagnostics (one array of
// {file,line,column,check,message}); the default text format matches
// the GitHub Actions problem matcher in .github/dpilint-matcher.json.
//
// The -dir flag instead analyzes one bare directory as a single package
// (used to demonstrate the checker against a violation fixture):
//
//	go run ./cmd/dpilint -dir internal/lint/testdata/src/hotpath
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dpiservice/internal/lint"
)

func main() {
	dir := flag.String("dir", "", "analyze a single directory as one package instead of module patterns")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	escape := flag.Bool("escape", false, "prove //dpi:hotpath-reachable code allocation-free via -gcflags=-m")
	static := flag.Bool("static", true, "run the static checks (disable to run -escape alone)")
	flag.Parse()

	var (
		mod *lint.Module
		err error
	)
	if *dir != "" {
		mod, err = lint.LoadDir(*dir)
	} else {
		// One load feeds every requested analysis: `go list -export`
		// is the slow step, so -escape piggybacks on the same Module
		// instead of re-listing.
		mod, err = lint.LoadModule(".", flag.Args()...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpilint:", err)
		os.Exit(2)
	}

	var diags []lint.Diagnostic
	if *static {
		diags = lint.Run(mod)
	}
	if *escape {
		ediags, err := lint.CheckEscape(mod, lint.Annotate(mod))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpilint:", err)
			os.Exit(2)
		}
		diags = append(diags, ediags...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "dpilint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dpilint: %d issue(s) in %d package(s)\n", len(diags), len(mod.Pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dpilint: %d package(s) clean\n", len(mod.Pkgs))
}
