// Command dpinstance runs one DPI service instance daemon: it fetches
// its configuration from the controller (Section 5.1), listens for
// framed packets on a data port, scans each exactly once, answers with
// match reports, and periodically exports telemetry for the MCA²
// stress monitor (Section 4.3.1).
//
// Usage:
//
//	dpinstance [-controller addr] [-data addr] [-listen addr] [-verdicts addr]
//	           [-id name] [-dedicated] [-lease interval] [-debug-addr addr]
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dpiservice/internal/controller"
	"dpiservice/internal/core"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/obs"
	"dpiservice/internal/trace"
)

func main() {
	var (
		ctlAddr    = flag.String("controller", "127.0.0.1:9090", "DPI controller address")
		dataAddr   = flag.String("data", "127.0.0.1:9191", "framed-TCP data-plane listen address")
		wireAddr   = flag.String("listen", "", "batched-UDP wire data-plane listen address (empty disables)")
		verdicts   = flag.String("verdicts", "", "wire address of a middlebox verdict consumer; non-empty match reports are forwarded there (empty disables)")
		id         = flag.String("id", "dpi-1", "instance identifier")
		dedicated  = flag.Bool("dedicated", false, "run as an MCA2 dedicated instance (compact automaton)")
		telEvery   = flag.Duration("telemetry", 10*time.Second, "telemetry export interval (0 disables)")
		leaseEvery = flag.Duration("lease", 5*time.Second, "liveness lease renewal interval (0 disables leasing; keep well under the controller's lease TTL)")
		workers    = flag.Int("workers", 1, "scan workers per data connection (>1 pipelines: reads, scans and ordered writes overlap)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (empty disables)")
	)
	flag.Parse()

	// One registry for the whole process: the engine (also across
	// hot-swaps, so counters stay continuous), the wire protocol, and
	// the debug endpoints all share it.
	reg := obs.NewRegistry()
	ctlproto.EnableMetrics(reg)

	// Tracing and flight recording: the tracer holds spans of sampled
	// packets (the sender decides sampling and marks frames with
	// FlagTrace); the flight recorder is always on, fed by rare events
	// (evictions, retransmits, session deaths) across the subsystems.
	tracer := trace.NewTracer("dpi-"+*id, trace.DefaultSpanCapacity)
	fl := trace.NewFlight("dpi-"+*id, trace.DefaultFlightCapacity)
	clk := trace.StartClock(0)
	defer clk.Stop()
	fl.SetClock(clk)

	cl, err := controller.Dial(*ctlAddr)
	if err != nil {
		log.Fatalf("dpinstance: controller: %v", err)
	}
	init, err := helloCtx(cl, *id, *dedicated)
	if err != nil {
		log.Fatalf("dpinstance: hello: %v", err)
	}
	cfg, err := controller.ConfigFromInit(init)
	if err != nil {
		log.Fatalf("dpinstance: init: %v", err)
	}
	cfg.Metrics = reg
	engine, err := core.NewEngine(cfg)
	if err != nil {
		log.Fatalf("dpinstance: engine: %v", err)
	}
	engine.SetFlight(fl)
	var eng atomic.Pointer[core.Engine]
	eng.Store(engine)
	version := init.Version
	log.Printf("dpinstance %s: config v%d — %d patterns, %d states, %.1f MB, %d chains",
		*id, version, engine.NumPatterns(), engine.NumStates(),
		float64(engine.MemoryBytes())/1e6, len(engine.Chains()))

	ln, err := net.Listen("tcp", *dataAddr)
	if err != nil {
		log.Fatalf("dpinstance: data listen: %v", err)
	}
	log.Printf("dpinstance %s: data plane on %s", *id, ln.Addr())

	var stopWire func()
	if *wireAddr != "" {
		stopWire, err = startWire(*wireAddr, *verdicts, *id, init, &eng, reg, tracer, fl)
		if err != nil {
			log.Fatalf("dpinstance: wire: %v", err)
		}
	}

	if *debugAddr != "" {
		mux := obs.NewDebugMux(reg, obs.Health{
			Service: "dpinstance",
			Healthy: func() bool { return eng.Load() != nil },
			Details: func() map[string]any {
				e := eng.Load()
				if e == nil {
					return nil
				}
				return map[string]any{
					"id":           *id,
					"active_flows": e.ActiveFlows(),
					"patterns":     e.NumPatterns(),
				}
			},
		})
		mux.Handle("/trace", tracer.Handler())
		mux.Handle("/flight", fl.Handler())
		dbg, err := obs.StartDebugServer(*debugAddr, mux)
		if err != nil {
			log.Fatalf("dpinstance: debug listen: %v", err)
		}
		defer dbg.Close()
		log.Printf("dpinstance %s: debug endpoints on http://%s", *id, dbg.Addr())
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	if *telEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			exportAndRefresh(cl, *id, *dedicated, reg, &eng, fl, &version, *telEvery, stop)
		}()
	}
	if *leaseEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			renewLeases(cl, *id, *dedicated, *leaseEvery, stop)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				serveData(conn, &eng, *workers)
			}()
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	close(stop)
	ln.Close()
	if stopWire != nil {
		stopWire()
	}
	cl.Close()
	wg.Wait()
	s := eng.Load().Snapshot()
	log.Printf("dpinstance %s: done — %d packets, %d bytes, %d matches",
		*id, s.Packets, s.Bytes, s.Matches)
}

// serveData handles one data connection: packet in, report out. The
// engine pointer is reloaded per packet so controller-pushed updates
// apply without dropping the connection. With workers > 1 the
// connection is pipelined: a reader feeds a scan worker pool and a
// writer emits results in arrival order, so scans of different flows
// overlap on all cores while the framed protocol stays in sequence.
func serveData(conn net.Conn, eng *atomic.Pointer[core.Engine], workers int) {
	defer conn.Close()
	if workers > 1 {
		serveDataParallel(conn, eng, workers)
		return
	}
	var payload, enc []byte
	for {
		tag, tuple, p, err := ctlproto.ReadDataPacket(conn, payload)
		if err != nil {
			logReadErr(err)
			return
		}
		payload = p
		rep, err := eng.Load().InspectTimed(tag, tuple, p)
		if err != nil {
			log.Printf("dpinstance: inspect: %v", err)
			if err := ctlproto.WriteResultFrame(conn, nil); err != nil {
				return
			}
			continue
		}
		enc = enc[:0]
		if rep != nil {
			enc = rep.AppendEncoded(enc)
		}
		if err := ctlproto.WriteResultFrame(conn, enc); err != nil {
			return
		}
	}
}

func logReadErr(err error) {
	if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
		log.Printf("dpinstance: data read: %v", err)
	}
}

// serveDataParallel runs the reader → worker pool → ordered writer
// pipeline for one connection.
func serveDataParallel(conn net.Conn, eng *atomic.Pointer[core.Engine], workers int) {
	pool := core.NewPool(func() *core.Engine { return eng.Load() }, workers, 0)
	defer pool.Close()
	// The completion queue preserves read order; the writer drains it
	// so result frames match the request sequence.
	pending := make(chan *core.Job, workers*8)
	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		var enc []byte
		dead := false
		for job := range pending {
			job.Wait()
			if dead {
				continue // keep draining so the reader never wedges
			}
			if job.Err != nil {
				log.Printf("dpinstance: inspect: %v", job.Err)
			}
			enc = enc[:0]
			if job.Report != nil {
				enc = job.Report.AppendEncoded(enc)
			}
			if err := ctlproto.WriteResultFrame(conn, enc); err != nil {
				conn.Close() // unblock the reader
				dead = true
			}
		}
	}()
	for {
		tag, tuple, p, err := ctlproto.ReadDataPacket(conn, nil)
		if err != nil {
			logReadErr(err)
			break
		}
		job := &core.Job{Tag: tag, Tuple: tuple, Payload: p}
		pool.Submit(job)
		pending <- job
	}
	close(pending)
	<-writeDone
}

// opTimeout bounds every control round-trip so a hung or partitioned
// controller never wedges a daemon loop.
const opTimeout = 5 * time.Second

// helloCtx runs one bounded InstanceHello.
func helloCtx(cl *controller.Client, id string, dedicated bool) (ctlproto.InstanceInit, error) {
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()
	return cl.InstanceHello(ctx, id, nil, dedicated)
}

// renewLeases keeps the instance's liveness lease fresh. A renewal
// rejected with "lease expired" means the controller already declared
// this instance dead and failed its chains over; the instance re-hellos
// to rejoin service rather than silently scanning for chains it no
// longer owns.
func renewLeases(cl *controller.Client, id string, dedicated bool, every time.Duration, stop <-chan struct{}) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
		_, _, err := cl.RenewLease(ctx, id)
		cancel()
		switch {
		case err == nil:
		case controller.IsLeaseExpired(err):
			log.Printf("dpinstance %s: lease expired, re-helloing", id)
			if _, herr := helloCtx(cl, id, dedicated); herr != nil {
				log.Printf("dpinstance %s: re-hello: %v", id, herr)
			}
		default:
			log.Printf("dpinstance %s: lease renewal: %v", id, err)
		}
	}
}

// exportAndRefresh periodically ships counters and heavy flows, and
// re-requests the instance configuration, hot-swapping the engine when
// the controller's version advanced (the runtime pattern-update path).
func exportAndRefresh(cl *controller.Client, id string, dedicated bool, reg *obs.Registry, eng *atomic.Pointer[core.Engine], fl *trace.Flight, version *uint64, every time.Duration, stop <-chan struct{}) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		init, err := helloCtx(cl, id, dedicated)
		if err != nil {
			log.Printf("dpinstance: refresh: %v", err)
			return
		}
		if init.Version != *version {
			cfg, err := controller.ConfigFromInit(init)
			// The rebuilt engine keeps feeding the shared registry so
			// scrape-side counters never reset across config updates.
			cfg.Metrics = reg
			if err != nil {
				log.Printf("dpinstance: bad update: %v", err)
			} else if fresh, err := core.NewEngine(cfg); err != nil {
				log.Printf("dpinstance: rebuild: %v", err)
			} else {
				fresh.SetFlight(fl)
				eng.Store(fresh)
				*version = init.Version
				log.Printf("dpinstance %s: applied config v%d (%d patterns)",
					id, *version, fresh.NumPatterns())
			}
		}
		engine := eng.Load()
		s := engine.Snapshot()
		tel := ctlproto.Telemetry{
			InstanceID: id, Packets: s.Packets, Bytes: s.Bytes,
			BytesScanned: s.BytesScanned, Matches: s.Matches,
		}
		for _, f := range engine.FlowStats() {
			if f.Bytes == 0 || float64(f.Matches)/float64(f.Bytes) < 0.01 {
				continue
			}
			tel.HeavyFlows = append(tel.HeavyFlows, ctlproto.FlowTelemetry{
				Flow: ctlproto.FlowKey{
					Src: f.Tuple.Src.String(), Dst: f.Tuple.Dst.String(),
					SrcPort: f.Tuple.SrcPort, DstPort: f.Tuple.DstPort,
					Protocol: f.Tuple.Protocol,
				},
				Bytes: f.Bytes, Matches: f.Matches,
			})
			if len(tel.HeavyFlows) >= 16 {
				break
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
		err = cl.SendTelemetry(ctx, tel)
		cancel()
		if err != nil {
			log.Printf("dpinstance: telemetry: %v", err)
			return
		}
	}
}
