package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"dpiservice/internal/core"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/obs"
	"dpiservice/internal/packet"
	"dpiservice/internal/trace"
	"dpiservice/internal/wire"
)

// startWire runs the batched-UDP wire data plane: a wire server that
// scans every delivered packet exactly once and answers with the
// encoded match report, plus an optional verdict-forwarding client
// that pushes non-empty reports to a middlebox verdict consumer. The
// cluster key and the instance's own session token both come from
// InstanceInit. Sampled packets (FlagTrace set by the sender) accrue
// decode/reassembly/scan/encode spans into tracer and propagate their
// trace context on the forwarded verdict; fl captures wire-level rare
// events. The returned func shuts the data plane down.
func startWire(listen, verdicts, id string, init ctlproto.InstanceInit, eng *atomic.Pointer[core.Engine], reg *obs.Registry, tracer *trace.Tracer, fl *trace.Flight) (func(), error) {
	met := wire.NewMetrics(reg)
	met.SetFlight(fl)
	tr, err := wire.ListenUDP(listen)
	if err != nil {
		return nil, err
	}
	srv := wire.NewServer(tr, init.WireKey, wire.Config{}, met)
	srv.SetLogf(log.Printf)

	var vc *wire.Conn
	if verdicts != "" {
		vtr, err := wire.DialUDP(verdicts)
		if err != nil {
			tr.Close()
			return nil, err
		}
		vc = wire.NewConn(vtr, init.WireToken, id, wire.Config{}, met)
		if err := vc.Start(10 * time.Second); err != nil {
			vc.Close()
			tr.Close()
			return nil, fmt.Errorf("verdict consumer %s: %w", verdicts, err)
		}
		log.Printf("dpinstance %s: forwarding verdicts to %s", id, verdicts)
	}

	// Handlers run on the server's single receive goroutine, so one
	// encode buffer is reused across packets.
	var enc []byte
	srv.OnData(func(s *wire.Session, seq uint32, tag uint16, tuple packet.FiveTuple, payload []byte) {
		traceID, pktIdx, traced := s.Trace()
		var rep *packet.Report
		var err error
		if traced {
			// Decode span: time from the datagram batch read to handler
			// dispatch (frame parse, reorder, trace-ext strip).
			decNs := s.SinceRecv()
			now := time.Now().UnixNano()
			tracer.Record(traceID, pktIdx, trace.StageDecode, now-decNs, decNs)
			var prepNs, scanNs int64
			rep, prepNs, scanNs, err = eng.Load().InspectStaged(tag, tuple, payload)
			// The engine's prepare stage (flow admission, decompression,
			// stopping conditions) is the wire pipeline's reassembly
			// analogue; the rest is the DFA scan.
			tracer.Record(traceID, pktIdx, trace.StageReassembly, now, prepNs)
			tracer.Record(traceID, pktIdx, trace.StageScan, now+prepNs, scanNs)
		} else {
			rep, err = eng.Load().InspectTimed(tag, tuple, payload)
		}
		if err != nil {
			log.Printf("dpinstance: inspect: %v", err)
			rep = nil
		}
		var encStart int64
		if traced {
			encStart = time.Now().UnixNano()
		}
		enc = enc[:0]
		if rep != nil {
			enc = rep.AppendEncoded(enc)
		}
		if err := s.SendResult(seq, enc); err != nil {
			log.Printf("dpinstance: result: %v", err)
		}
		if len(enc) > 0 && vc != nil {
			if traced {
				err = vc.SendVerdictTraced(tag, tuple, traceID, pktIdx, enc)
			} else {
				err = vc.SendVerdict(tag, tuple, enc)
			}
			if err != nil {
				log.Printf("dpinstance: verdict: %v", err)
			}
		}
		if traced {
			tracer.Record(traceID, pktIdx, trace.StageEncode, encStart, time.Now().UnixNano()-encStart)
		}
	})
	srv.Start()
	log.Printf("dpinstance %s: wire data plane on %s", id, srv.LocalAddr().String())

	return func() {
		srv.Close()
		if vc != nil {
			vc.Flush()
			if err := vc.WaitIdle(2 * time.Second); err != nil {
				log.Printf("dpinstance: verdict drain: %v", err)
			}
			vc.Close()
		}
	}, nil
}
