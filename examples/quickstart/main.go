// Quickstart: build one virtual DPI engine from the pattern sets of two
// middleboxes (an IDS and an anti-virus), scan packets exactly once,
// and read each middlebox's results out of the match report — the core
// idea of "Deep Packet Inspection as a Service".
package main

import (
	"fmt"
	"log"

	"dpiservice"
)

func main() {
	// Each middlebox type brings its own pattern set. Patterns are
	// identified by the middlebox's own rule IDs; "evil-domain.test"
	// is registered by both, and the engine stores it once.
	ids := dpiservice.PatternSetFromStrings("ids", []string{
		"/etc/passwd",      // rule 0
		"attack-signature", // rule 1
		"evil-domain.test", // rule 2
	})
	av := dpiservice.PatternSetFromStrings("av", []string{
		"malware-body-marker", // rule 0
		"evil-domain.test",    // rule 1
	})
	// The IDS also has a regular expression rule; the engine extracts
	// its anchor ("User-Agent: evilbot") for the fast path and invokes
	// the full regex engine only when the anchor appears (Section 5.3
	// of the paper).
	ids.Regexes = []dpiservice.Regex{{ID: 3, Expr: `User-Agent: evilbot/\d+\.\d+`}}

	engine, err := dpiservice.NewEngine(dpiservice.Config{
		Profiles: []dpiservice.Profile{
			{ID: 0, Name: "ids", Stateful: true, ReadOnly: true, Patterns: ids},
			{ID: 1, Name: "av", Patterns: av},
		},
		// Policy chain 1 carries traffic that must visit both
		// middleboxes; the DPI service scans it once for both.
		Chains: map[uint16][]int{1: {0, 1}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %d patterns merged into %d states (%.1f MB)\n\n",
		engine.NumPatterns(), engine.NumStates(), float64(engine.MemoryBytes())/1e6)

	flow := dpiservice.FiveTuple{
		Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2},
		SrcPort: 12345, DstPort: 80, Protocol: 6,
	}
	packets := [][]byte{
		[]byte("GET /index.html HTTP/1.1\r\nHost: example.test\r\n\r\n"),
		[]byte("GET /../../etc/passwd HTTP/1.1\r\nHost: evil-domain.test\r\n\r\n"),
		[]byte("binary blob with malware-body-marker inside"),
		[]byte("GET / HTTP/1.1\r\nUser-Agent: evilbot/2.1\r\n\r\n"),
		// The attack signature split across two packets of the flow:
		// only the stateful IDS sees it.
		[]byte("...attack-sig"),
		[]byte("nature..."),
	}
	for i, payload := range packets {
		report, err := engine.Inspect(1, flow, payload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("packet %d: %q\n", i, truncate(payload, 48))
		if report == nil {
			fmt.Println("  no matches — forwarded unmodified")
			continue
		}
		for _, sec := range report.Sections {
			name := map[uint8]string{0: "ids", 1: "av"}[sec.Mbox]
			for _, e := range sec.Entries {
				// Regex-confirmed matches are reported in a separate
				// ID space above RegexReportBase (1<<14).
				kind, id := "rule", int(e.Pattern)
				if id >= 1<<14 {
					kind, id = "regex rule", id-1<<14
				}
				fmt.Printf("  -> %s: %s %d matched at byte %d (x%d)\n",
					name, kind, id, e.Pos, e.Count)
			}
		}
		fmt.Printf("  report wire size: %d bytes\n", report.EncodedLen())
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
