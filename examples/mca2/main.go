// Mca2 reproduces the Figure 6 robustness scenario (Section 4.3.1):
// the DPI controller's stress monitor detects a complexity-attack flow
// from instance telemetry and migrates it to a dedicated DPI instance
// running the compact (cache-friendlier) automaton, shielding regular
// traffic from the attack.
package main

import (
	"fmt"
	"log"
	"time"

	"dpiservice/internal/ctlproto"
	"dpiservice/internal/mca2"
	"dpiservice/internal/middlebox"
	"dpiservice/internal/packet"
	"dpiservice/internal/sdn"
	"dpiservice/internal/system"
	"dpiservice/internal/traffic"
)

func main() {
	tb, err := system.NewTestbed()
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Stop()

	pats := []string{"attack-sig", "evil-payload", "malware-body"}
	if _, err := tb.AddConsumerMbox("ids-1", "ids", ctlproto.Register{},
		pats, middlebox.NewCountLogic()); err != nil {
		log.Fatal(err)
	}
	tb.Switch.SetController(tb.TSA)
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1"}}
	tag, err := tb.TSA.InstallBalancedChain(spec, []string{"dpi-1"})
	if err != nil {
		log.Fatal(err)
	}
	regular, err := tb.AddDPIInstance("dpi-1", []uint16{tag}, false)
	if err != nil {
		log.Fatal(err)
	}
	dedicated, err := tb.AddDPIInstance("dpi-dedicated", []uint16{tag}, true)
	if err != nil {
		log.Fatal(err)
	}
	monitor := mca2.New(tb.DPICtl, mca2.Config{MinFlowBytes: 512, MatchDensity: 0.01})
	fmt.Println("deployed: dpi-1 (full-table automaton) + dpi-dedicated (compact automaton)")

	// Phase 1: normal traffic plus one attack flow.
	benign := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 1000, DstPort: 80, Protocol: packet.IPProtoTCP}
	attack := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 6666, DstPort: 80, Protocol: packet.IPProtoTCP}
	atk := traffic.NewGenerator(traffic.Config{Seed: 7, Mix: traffic.AttackMix, InjectPatterns: pats})
	var fb traffic.FrameBuilder
	for i := 0; i < 20; i++ {
		tb.Src.Send(fb.Build(benign, []byte("an ordinary page with ordinary words on it")))
		tb.Src.Send(fb.Build(attack, atk.PayloadN(700)))
	}
	tb.Net.Flush(2 * time.Second)
	time.Sleep(50 * time.Millisecond)

	// Phase 2: the instance exports telemetry; the monitor decides.
	if err := tb.DPICtl.ReportTelemetry(regular.Telemetry(8)); err != nil {
		log.Fatal(err)
	}
	decisions, err := monitor.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range decisions {
		flow, _ := middlebox.TupleOf(d.Flow)
		fmt.Printf("stress monitor: flow %v on %s is heavy -> migrate to %s\n", flow, d.From, d.To)
		if err := tb.TSA.MigrateFlow(tag, spec, flow, d.To); err != nil {
			log.Fatal(err)
		}
	}
	if len(decisions) == 0 {
		fmt.Println("stress monitor: no heavy flows (unexpected)")
		return
	}

	// Phase 3: the attack continues but lands on the dedicated
	// instance; regular traffic is unaffected.
	before := regular.Engine().Snapshot().Packets
	for i := 0; i < 10; i++ {
		tb.Src.Send(fb.Build(benign, []byte("still ordinary traffic")))
		tb.Src.Send(fb.Build(attack, atk.PayloadN(700)))
	}
	tb.Net.Flush(2 * time.Second)
	time.Sleep(50 * time.Millisecond)

	rs, ds := regular.Engine().Snapshot(), dedicated.Engine().Snapshot()
	fmt.Printf("\nafter migration:\n")
	fmt.Printf("  dpi-1:          +%d packets (benign only)\n", rs.Packets-before)
	fmt.Printf("  dpi-dedicated:  %d packets, %d matches (the attack flow)\n", ds.Packets, ds.Matches)
	fmt.Printf("  dedicated engine is the compact representation: %.2f MB vs %.2f MB\n",
		float64(dedicated.Engine().MemoryBytes())/1e6, float64(regular.Engine().MemoryBytes())/1e6)
}
