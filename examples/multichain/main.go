// Multichain reproduces the paper's Figure 3(b) scenario: flows are
// multiplexed across multiple DPI service instances by the TSA's
// reactive per-flow rules, so DPI capacity is pooled instead of being
// welded to individual middleboxes — the basis of the dynamic load
// balancing argument of Section 6.4 and Figure 10.
package main

import (
	"fmt"
	"log"
	"time"

	"dpiservice/internal/ctlproto"
	"dpiservice/internal/middlebox"
	"dpiservice/internal/sdn"
	"dpiservice/internal/system"
	"dpiservice/internal/traffic"
)

func main() {
	tb, err := system.NewTestbed()
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Stop()

	// One IDS-style middlebox consumes the results of BOTH instances.
	counter := middlebox.NewCountLogic()
	if _, err := tb.AddConsumerMbox("ids-1", "ids", ctlproto.Register{},
		[]string{"needle-one", "needle-two"}, counter); err != nil {
		log.Fatal(err)
	}

	// The TSA balances new flows across two DPI instances, installing
	// exact-match rules on each flow's first packet (SIMPLE-style
	// reactive steering).
	tb.Switch.SetController(tb.TSA)
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1"}}
	tag, err := tb.TSA.InstallBalancedChain(spec, []string{"dpi-1", "dpi-2"})
	if err != nil {
		log.Fatal(err)
	}
	dpi1, err := tb.AddDPIInstance("dpi-1", []uint16{tag}, false)
	if err != nil {
		log.Fatal(err)
	}
	dpi2, err := tb.AddDPIInstance("dpi-2", []uint16{tag}, false)
	if err != nil {
		log.Fatal(err)
	}

	// 10 flows x 5 packets, ~20% of packets carrying a pattern.
	gen := traffic.NewGenerator(traffic.Config{
		Seed: 42, MatchFraction: 0.2,
		InjectPatterns: []string{"needle-one", "needle-two"},
		MinPayload:     300, MaxPayload: 900,
	})
	flows := gen.Flows(10, 5)
	var fb traffic.FrameBuilder
	sent := 0
	for _, fl := range flows {
		tuple := fl.Tuple
		tuple.Src, tuple.Dst = tb.Src.IP, tb.Dst.IP
		for _, p := range fl.Payloads {
			tb.Src.Send(fb.Build(tuple, p))
			sent++
		}
	}
	tb.Net.Flush(2 * time.Second)
	time.Sleep(50 * time.Millisecond)

	s1, s2 := dpi1.Engine().Snapshot(), dpi2.Engine().Snapshot()
	fmt.Printf("sent %d packets across %d flows\n", sent, len(flows))
	fmt.Printf("dpi-1 scanned %d packets (%d matches); dpi-2 scanned %d (%d matches)\n",
		s1.Packets, s1.Matches, s2.Packets, s2.Matches)
	fmt.Printf("IDS counted %d rule hits without scanning\n", counter.Total())
	fmt.Println("\nper-flow instance assignment (flow affinity):")
	for _, fl := range flows {
		tuple := fl.Tuple
		tuple.Src, tuple.Dst = tb.Src.IP, tb.Dst.IP
		inst, _ := tb.TSA.InstanceOf(tuple)
		fmt.Printf("  %v -> %s\n", tuple, inst)
	}
}
