// Servicechain reproduces the paper's Figure 1(b)/Figure 2(b) pipeline
// on the virtual network: traffic is steered src -> DPI service -> IDS
// -> AntiVirus -> dst by the TSA, the DPI instance scans each packet
// once against both middleboxes' merged pattern sets, marks matching
// packets via ECN, and emits dedicated result packets that each
// middlebox pairs with its data packet — no middlebox scans anything.
package main

import (
	"fmt"
	"log"
	"time"

	"dpiservice/internal/ctlproto"
	"dpiservice/internal/middlebox"
	"dpiservice/internal/packet"
	"dpiservice/internal/sdn"
	"dpiservice/internal/system"
	"dpiservice/internal/traffic"
)

func main() {
	tb, err := system.NewTestbed()
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Stop()

	// Two middleboxes register with the DPI controller and push their
	// pattern sets (Section 4.1). The IDS is stateful and read-only;
	// the AV acts on packets.
	idsLogic := middlebox.NewCountLogic()
	avLogic := middlebox.NewIPSLogic(0) // AV drops packets matching its rule 0
	if _, err := tb.AddConsumerMbox("ids-1", "ids",
		ctlproto.Register{Stateful: true, ReadOnly: true},
		[]string{"attack-signature", "/etc/passwd"}, idsLogic); err != nil {
		log.Fatal(err)
	}
	if _, err := tb.AddConsumerMbox("av-1", "av", ctlproto.Register{},
		[]string{"malware-body-marker"}, avLogic); err != nil {
		log.Fatal(err)
	}

	// The TSA installs the policy chain with the DPI service
	// prepended, then the controller-derived instance is deployed.
	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1", "av-1"}}
	tag, err := tb.TSA.InstallChainWithDPI(spec, "dpi-1")
	if err != nil {
		log.Fatal(err)
	}
	dpi, err := tb.AddDPIInstance("dpi-1", []uint16{tag}, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain %d installed: src -> dpi-1 -> ids-1 -> av-1 -> dst\n", tag)
	fmt.Printf("instance dpi-1: %d patterns in %d states\n\n",
		dpi.Engine().NumPatterns(), dpi.Engine().NumStates())

	// Count what actually reaches the destination, separating data
	// packets from result packets that rode the chain past the last
	// middlebox (an end host simply ignores the unknown ethertype).
	var dataAtDst, reportsAtDst, marked int
	tb.Dst.SetHandler(func(frame []byte) {
		var s packet.Summary
		if packet.Summarize(frame, &s) != nil {
			return
		}
		if s.IsReport {
			reportsAtDst++
		} else {
			dataAtDst++
			if s.ECNMarked {
				marked++
			}
		}
	})

	// Send a small mixed workload.
	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 40000, DstPort: 80, Protocol: packet.IPProtoTCP}
	payloads := []string{
		"an entirely benign request",
		"this one carries the attack-signature string",
		"cat /etc/passwd please",
		"dropped: malware-body-marker present",
		"benign again",
	}
	for _, p := range payloads {
		tb.Src.Send(fb.Build(tuple, []byte(p)))
	}
	tb.Net.Flush(2 * time.Second)
	time.Sleep(50 * time.Millisecond)

	fmt.Printf("dst received %d of %d data packets (AV dropped the malware one), %d marked, %d stray result packets\n",
		dataAtDst, len(payloads), marked, reportsAtDst)
	fmt.Printf("IDS (never scanned a byte) counted %d rule hits\n", idsLogic.Total())
	fmt.Printf("AV dropped %d packets\n", avLogic.Drops.Load())
	s := dpi.Engine().Snapshot()
	fmt.Printf("DPI instance: %d packets scanned once each, %d matches, %d reports\n",
		s.Packets, s.Matches, s.Reports)
}
