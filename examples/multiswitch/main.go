// Multiswitch steers a policy chain across a two-switch fabric
// (Figure 5's general topology): the source and the DPI service
// instance live on one switch, the IDS and the destination on another,
// and SIMPLE-style per-segment tags route data and result packets over
// the trunk. DPI still happens exactly once.
package main

import (
	"fmt"
	"log"
	"time"

	"dpiservice/internal/controller"
	"dpiservice/internal/core"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/middlebox"
	"dpiservice/internal/netsim"
	"dpiservice/internal/openflow"
	"dpiservice/internal/packet"
	"dpiservice/internal/sdn"
	"dpiservice/internal/traffic"
)

func main() {
	net := netsim.NewNetwork()
	defer net.Stop()
	ctl := controller.New()
	fabric := sdn.NewFabric(ctl)

	s1, s2 := openflow.NewSwitch("s1"), openflow.NewSwitch("s2")
	for _, sw := range []*openflow.Switch{s1, s2} {
		fabric.AddSwitch(sw)
		must(net.AddNode(sw))
	}
	must(net.Connect(s1, s2, netsim.LinkOpts{}))
	must(fabric.Trunk(s1, s2))

	mkHost := func(name string, sw *openflow.Switch, last byte) *netsim.Host {
		h := netsim.NewHost(name, packet.MAC{2, 0, 0, 0, 0, last}, packet.IP4{10, 0, 0, last})
		must(net.AddNode(h))
		must(net.Connect(h, sw, netsim.LinkOpts{}))
		must(fabric.Place(name, sw))
		return h
	}
	src := mkHost("src", s1, 1)
	dpiHost := mkHost("dpi-1", s1, 2)
	idsHost := mkHost("ids-1", s2, 3)
	dst := mkHost("dst", s2, 4)

	// Control plane: the IDS registers its patterns; the TSA-equivalent
	// fabric installs the chain across both switches.
	if _, err := ctl.Register(ctlproto.Register{MboxID: "ids-1", Type: "ids"}); err != nil {
		log.Fatal(err)
	}
	must(ctl.AddPatterns("ids-1", []ctlproto.PatternDef{
		{RuleID: 0, Content: []byte("lateral-movement")},
	}))
	ic, err := fabric.InstallChainWithDPI(
		sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"ids-1"}}, "dpi-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain %d installed across s1/s2; segment tags %v\n", ic.Tag, ic.SegTags)

	// Data plane: the instance engine is keyed by the tag its packets
	// arrive under.
	cfg, err := ctl.InstanceConfig([]uint16{ic.Tag}, false)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Chains[ic.InstanceKey] = cfg.Chains[ic.Tag]
	if ic.InstanceKey != ic.Tag {
		delete(cfg.Chains, ic.Tag)
	}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dpi := middlebox.NewDPINode("dpi-1", dpiHost, engine)
	counter := middlebox.NewCountLogic()
	middlebox.NewConsumerNode(idsHost, 0, counter)

	var fb traffic.FrameBuilder
	tuple := packet.FiveTuple{Src: src.IP, Dst: dst.IP, SrcPort: 7, DstPort: 80, Protocol: packet.IPProtoTCP}
	src.Send(fb.Build(tuple, []byte("benign cross-switch traffic")))
	src.Send(fb.Build(tuple, []byte("signs of lateral-movement here")))
	net.Flush(2 * time.Second)
	time.Sleep(50 * time.Millisecond)

	s := dpi.Engine().Snapshot()
	fmt.Printf("dpi-1 (on s1) scanned %d packets once each\n", s.Packets)
	fmt.Printf("ids-1 (on s2) counted %d rule hits from result packets over the trunk\n", counter.Total())
	// dst sees the two data frames plus the result frame that rode the
	// chain past its last middlebox (an end host ignores the unknown
	// ethertype).
	fmt.Printf("dst received %d frames, untagged\n", dst.Received())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
