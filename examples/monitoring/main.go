// Monitoring demonstrates the Big-Tap-style result-only deployment
// (Section 4.2, third option) with three read-only consumers from
// Table 1 — a network-analytics box, a DLP box with regular-expression
// rules, and a counting IDS — fed purely by result packets while data
// goes straight to its destination, plus the session-reconstruction
// service reordering TCP segments before the scan.
package main

import (
	"fmt"
	"log"
	"time"

	"dpiservice/internal/ctlproto"
	"dpiservice/internal/middlebox"
	"dpiservice/internal/packet"
	"dpiservice/internal/sdn"
	"dpiservice/internal/system"
	"dpiservice/internal/traffic"
)

func main() {
	tb, err := system.NewTestbed()
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Stop()

	// Analytics: protocol identification by signature (Qosmos row of
	// Table 1).
	analytics := middlebox.NewAnalyticsLogic(map[uint16]string{0: "http", 1: "sip"})
	if _, err := tb.AddConsumerMbox("analytics-1", "analytics",
		ctlproto.Register{ReadOnly: true, StopAfter: 512},
		[]string{"HTTP/1.1", "INVITE sip:"}, analytics); err != nil {
		log.Fatal(err)
	}

	// DLP: a regex rule for payment-card-like numbers (Check Point DLP
	// row). Registered over the wire-style pattern API with a regex.
	dlp := middlebox.NewDLPLogic()
	dlpNode, err := tb.AddConsumerMbox("dlp-1", "dlp",
		ctlproto.Register{ReadOnly: true}, nil, dlp)
	if err != nil {
		log.Fatal(err)
	}
	_ = dlpNode
	if err := tb.DPICtl.AddPatterns("dlp-1", []ctlproto.PatternDef{
		{RuleID: 0, Regex: `card=[0-9]{16}`},
	}); err != nil {
		log.Fatal(err)
	}

	idsLogic := middlebox.NewCountLogic()
	if _, err := tb.AddConsumerMbox("ids-1", "ids",
		ctlproto.Register{ReadOnly: true, Stateful: true},
		[]string{"attack-marker"}, idsLogic); err != nil {
		log.Fatal(err)
	}

	spec := sdn.ChainSpec{Src: "src", Dst: "dst", Elements: []string{"analytics-1", "dlp-1", "ids-1"}}
	tag, err := tb.TSA.InstallResultOnlyChain(spec, "dpi-1")
	if err != nil {
		log.Fatal(err)
	}
	dpi, err := tb.AddDPIInstance("dpi-1", []uint16{tag}, false)
	if err != nil {
		log.Fatal(err)
	}
	dpi.SetResultOnly(tag, true)
	fmt.Println("monitoring fabric: data src->dpi-1->dst; results dpi-1->analytics->dlp->ids")

	var fb traffic.FrameBuilder
	http := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 1111, DstPort: 80, Protocol: packet.IPProtoTCP}
	sip := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 2222, DstPort: 5060, Protocol: packet.IPProtoUDP}
	leak := packet.FiveTuple{Src: tb.Src.IP, Dst: tb.Dst.IP, SrcPort: 3333, DstPort: 80, Protocol: packet.IPProtoTCP}

	tb.Src.Send(fb.Build(http, []byte("GET / HTTP/1.1\r\nHost: shop.test\r\n\r\n")))
	tb.Src.Send(fb.Build(http, []byte("more of the same http flow")))
	tb.Src.Send(fb.Build(sip, []byte("INVITE sip:alice@example.test SIP/2.0")))
	tb.Src.Send(fb.Build(leak, []byte("POST /pay HTTP/1.1\r\n\r\ncard=4111111111111111&cvv=123")))
	tb.Src.Send(fb.Build(http, []byte("an attack-marker rides the http flow")))

	tb.Net.Flush(2 * time.Second)
	time.Sleep(50 * time.Millisecond)

	fmt.Printf("\ndata packets at dst: %d of 5 (read-only chain never drops)\n", tb.Dst.Received())
	fmt.Printf("analytics: flows by protocol = %v, bytes = %v\n", analytics.Flows(), analytics.Bytes())
	fmt.Printf("dlp: %d leak occurrences, flow blocked (advisory in read-only mode): %v\n",
		dlp.Leaks, dlp.FlowBlocked(leak))
	fmt.Printf("ids: %d rule hits\n", idsLogic.Total())
	s := dpi.Engine().Snapshot()
	fmt.Printf("dpi-1: %d packets scanned, %d regex confirmations, %d hits\n",
		s.Packets, s.RegexConfirms+s.RegexHits, s.RegexHits)
}
