module dpiservice

go 1.22
