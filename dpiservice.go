// Package dpiservice is a complete implementation of "Deep Packet
// Inspection as a Service" (Bremler-Barr, Harchol, Hay, Koral —
// CoNEXT 2014): DPI is extracted from individual middleboxes and
// offered as a network service that scans each packet exactly once
// against the merged pattern sets of every middlebox on its policy
// chain, delivering per-middlebox match reports alongside (or instead
// of) the packets.
//
// This root package is the public façade: it re-exports the library's
// primary types so applications depend on one import path. The pieces:
//
//   - Engine (internal/core): the virtual DPI engine — a merged
//     Aho-Corasick automaton with dense accepting-state numbering,
//     per-state middlebox bitmaps and a direct-access match table;
//     stateful cross-packet scanning; stopping conditions; and
//     anchor-based regular expression pre-filtering.
//   - Controller (internal/controller): the logically-centralized DPI
//     controller — middlebox registration, global pattern set with
//     reference counting, policy-chain tags, instance configuration,
//     telemetry.
//   - Report (internal/packet): the compact match-report wire format
//     (4-byte matches, 6-byte ranges).
//   - The SDN substrate (internal/netsim, internal/openflow,
//     internal/sdn) and data-plane nodes (internal/middlebox) used by
//     the examples and experiments.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduction of the paper's evaluation.
package dpiservice

import (
	"dpiservice/internal/controller"
	"dpiservice/internal/core"
	"dpiservice/internal/ctlproto"
	"dpiservice/internal/packet"
	"dpiservice/internal/patterns"
)

// Engine is the DPI service instance engine (see internal/core).
type Engine = core.Engine

// Config configures an Engine.
type Config = core.Config

// Profile describes one middlebox's pattern set and scan properties.
type Profile = core.Profile

// NewEngine compiles a configuration into a ready engine.
func NewEngine(cfg Config) (*Engine, error) { return core.NewEngine(cfg) }

// Controller is the logically-centralized DPI controller.
type Controller = controller.Controller

// NewController returns an empty controller.
func NewController() *Controller { return controller.New() }

// Register is the middlebox registration message.
type Register = ctlproto.Register

// PatternDef carries one pattern in controller messages.
type PatternDef = ctlproto.PatternDef

// Report is a decoded match report.
type Report = packet.Report

// FiveTuple identifies a transport flow.
type FiveTuple = packet.FiveTuple

// PatternSet is a named collection of patterns and regexes.
type PatternSet = patterns.Set

// Regex is a regular-expression rule within a PatternSet.
type Regex = patterns.Regex

// PatternSetFromStrings builds a set with sequential IDs.
func PatternSetFromStrings(name string, pats []string) *PatternSet {
	return patterns.FromStrings(name, pats)
}
